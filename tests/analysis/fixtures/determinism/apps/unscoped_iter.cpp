// apps/ is outside the unordered-iter scope: iteration order feeding a
// local accumulation is tolerated there.
#include <unordered_set>
namespace rush::apps {
struct Pods {
  std::unordered_set<int> ids_;
  [[nodiscard]] int count() const {
    int n = 0;
    for (int id : ids_) n += id > 0 ? 1 : 0;
    return n;
  }
};
}  // namespace rush::apps
