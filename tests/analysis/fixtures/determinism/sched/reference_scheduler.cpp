// Fixture: the pinned reference implementation is exempt from
// sched-linear-scan by file stem — its linear walks ARE the semantics
// the optimized scheduler is differentially tested against.
#include <algorithm>
#include <vector>

namespace rush::sched {

class ReferenceQueue {
 public:
  bool contains(int id) const {
    return std::find(queue_.begin(), queue_.end(), id) != queue_.end();
  }

 private:
  std::vector<int> queue_;
};

}  // namespace rush::sched
