// Fixture for sched-linear-scan: linear std:: algorithms over member
// containers (trailing underscore) in the sched module are findings;
// locals and allow-markered fallbacks are not.
#include <algorithm>
#include <vector>

namespace rush::sched {

class MiniQueue {
 public:
  bool contains(int id) const {
    return std::find(queue_.begin(), queue_.end(), id) != queue_.end();
  }

  void drop(int id) {
    // rush-analyze: allow(sched-linear-scan) deliberate unsorted fallback
    auto it = std::find(running_.begin(), running_.end(), id);
    if (it != running_.end()) running_.erase(it);
  }

  bool any_wider_than(int width) const {
    return std::find_if(pending_.begin(), pending_.end(),
                        [width](int w) { return w > width; }) != pending_.end();
  }

  static bool local_scan(const std::vector<int>& xs, int v) {
    return std::find(xs.begin(), xs.end(), v) != xs.end();
  }

 private:
  std::vector<int> queue_;
  std::vector<int> running_;
  std::vector<int> pending_;
};

}  // namespace rush::sched
