// VIOLATION: the member is declared unordered in the header (a different
// file!) and iterated here — regex lint never saw this cross-file case.
#include "bad_iter.hpp"

namespace rush::sched {
void Weights::bump(const std::string& k) { weights_[k] += 1.0; }
double Weights::total() const {
  double sum = 0.0;
  for (const auto& [k, w] : weights_) sum += w;
  return sum;
}
}  // namespace rush::sched
