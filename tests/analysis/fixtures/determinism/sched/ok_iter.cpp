// Negatives: sorted-copy iteration (a call in the range expression),
// ordered containers, and a justified suppression.
#include <map>
#include <unordered_set>
#include <vector>

namespace rush::sched {
std::vector<int> sorted_copy(const std::unordered_set<int>& s);

struct Tracker {
  std::unordered_set<int> live_;
  std::map<int, int> ranks_;
  std::vector<int> order_;

  [[nodiscard]] int sum_sorted() const {
    int sum = 0;
    for (int id : sorted_copy(live_)) sum += id;
    for (const auto& [k, v] : ranks_) sum += v;
    for (int id : order_) sum += id;
    return sum;
  }
  [[nodiscard]] int sum_unordered() const {
    int sum = 0;
    // rush-analyze: allow(unordered-iter) addition is order-insensitive
    for (int id : live_) sum += id;
    return sum;
  }
};
}  // namespace rush::sched
