#pragma once
#include <string>
#include <unordered_map>

namespace rush::sched {
class Weights {
 public:
  void bump(const std::string& k);
  [[nodiscard]] double total() const;
 private:
  std::unordered_map<std::string, double> weights_;
};
}  // namespace rush::sched
