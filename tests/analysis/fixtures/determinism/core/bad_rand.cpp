// VIOLATIONS: every form of wall-clock / hardware entropy the rule bans.
#include <cstdlib>
#include <ctime>
#include <random>

int roll() { return rand() % 6; }
void reseed() { srand(1234); }
std::random_device hw_entropy;
long stamp() { return time(nullptr); }
long stamp2() { return std::time(NULL); }
