// VIOLATIONS: raw threading primitives and OpenMP outside the task pool.
#include <future>
#include <thread>

void fit(int);
void fan_out() {
  std::thread worker([] { fit(4); });
  auto f = std::async([] { fit(5); });
  worker.join();
  f.get();
#pragma omp parallel for
  for (int i = 0; i < 4; ++i) fit(i);
}
