// Negatives: comments, strings, raw strings, member calls, and seeded
// engines must not fire.
#include <random>
#include <string>

struct Dice { int rand(int sides); };

int play(Dice& d) {
  // rand() in a comment is fine
  std::string s = "call rand() for fun";
  std::string r = R"(std::random_device in a raw string)";
  std::mt19937_64 engine(42);  // seeded: deterministic
  int grand_total = d.rand(6);
  return grand_total + static_cast<int>(engine() % 6) + static_cast<int>(s.size() + r.size());
}
