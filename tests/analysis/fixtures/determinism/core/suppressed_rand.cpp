#include <cstdlib>
// rush-analyze: allow(naked-rand) fixture: marker on the line above works
int roll() { return rand() % 6; }
int roll2() { return rand() % 8; }  // rush-lint: allow(naked-rand) legacy spelling honoured
