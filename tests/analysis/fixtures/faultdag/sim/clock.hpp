// Fixture: a clean downward dependency for faults.
#pragma once

namespace sim {
inline int clock_fixture() { return 0; }
}  // namespace sim
