// Fixture: sched may include faults (allowed direction), but together
// with faults/injector.hpp this forms a file-level include cycle.
#pragma once

#include "faults/injector.hpp"

namespace sched {
inline int hook_fixture() { return faults::injector_fixture() != 0 ? 1 : 2; }
}  // namespace sched
