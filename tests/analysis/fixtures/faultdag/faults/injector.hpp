// Fixture: faults reaching up into sched is a layer violation (the real
// dependency points the other way), and the mutual include is a cycle.
#pragma once

#include "sched/hook.hpp"
#include "sim/clock.hpp"

namespace faults {
inline int injector_fixture() { return sim::clock_fixture() + sched::hook_fixture(); }
}  // namespace faults
