#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace rush::core {
namespace {

constexpr std::size_t kF = telemetry::FeatureAssembler::kNumFeatures;

/// Synthetic corpus where feature 0 (a counter aggregate) drives run time:
/// runtime = base + gain * f0 + noise, so variation is learnable.
Corpus learnable_corpus(std::size_t per_app, std::uint64_t seed) {
  Rng rng(seed);
  Corpus c;
  const std::vector<std::string> apps{"A", "B", "C"};
  for (std::size_t a = 0; a < apps.size(); ++a) {
    const double base = 100.0 * static_cast<double>(a + 1);
    for (std::size_t i = 0; i < per_app; ++i) {
      CollectedSample s;
      s.app = apps[a];
      s.app_index = static_cast<int>(a);
      s.node_count = 16;
      const double congestion = rng.bernoulli(0.15) ? rng.uniform(0.6, 1.0) : rng.uniform(0.0, 0.3);
      s.runtime_s = base * (1.0 + congestion) + rng.normal(0.0, base * 0.01);
      s.features_all.assign(kF, 0.0);
      s.features_job.assign(kF, 0.0);
      // Like real counters, many features echo the congestion state, so
      // per-node feature subsampling still finds the signal.
      for (std::size_t f = 0; f < 24; ++f) {
        s.features_all[f] = congestion + rng.normal(0.0, 0.02);
        s.features_job[f] = congestion + rng.normal(0.0, 0.02);
      }
      // A couple of noise features so the models have to select.
      s.features_all[30] = rng.uniform(0, 1);
      s.features_job[30] = rng.uniform(0, 1);
      c.add(std::move(s));
    }
  }
  return c;
}

TEST(Pipeline, CandidateModelsMatchPaper) {
  EXPECT_EQ(candidate_model_names(),
            (std::vector<std::string>{"extra_trees", "decision_forest", "knn", "adaboost"}));
}

TEST(Pipeline, CompareModelsScoresAllCandidatesWell) {
  const Corpus corpus = learnable_corpus(120, 1);
  const Labeler labeler(corpus);
  const auto scores = compare_models(corpus, labeler);
  ASSERT_EQ(scores.size(), 4u);
  for (const ModelScore& s : scores) {
    // The congestion feature cleanly separates variation here.
    EXPECT_GT(s.f1_all_nodes, 0.55) << s.model;
    EXPECT_GT(s.accuracy_all_nodes, 0.9) << s.model;
  }
}

TEST(Pipeline, BestModelPicksHighestAllNodeF1) {
  std::vector<ModelScore> scores(3);
  scores[0] = {"a", 0.5, 0.4, 0, 0};
  scores[1] = {"b", 0.6, 0.9, 0, 0};
  scores[2] = {"c", 0.95, 0.7, 0, 0};
  EXPECT_EQ(best_model(scores), "c");
  EXPECT_THROW((void)best_model({}), PreconditionError);
}

TEST(Pipeline, TrainedPredictorPredictsCongestion) {
  const Corpus corpus = learnable_corpus(150, 2);
  const Labeler labeler(corpus);
  TrainerConfig tc;
  tc.scope = telemetry::AggregationScope::AllNodes;
  tc.variation_confidence = 0.0;
  const TrainedPredictor predictor = PredictorTrainer(tc).train(corpus, labeler);
  ASSERT_TRUE(predictor.ready());

  std::vector<double> calm(kF, 0.0);
  for (std::size_t f = 0; f < 24; ++f) calm[f] = 0.05;
  EXPECT_EQ(predictor.predict(calm), sched::VariabilityPrediction::NoVariation);

  std::vector<double> congested(kF, 0.0);
  for (std::size_t f = 0; f < 24; ++f) congested[f] = 0.95;
  EXPECT_EQ(predictor.predict(congested), sched::VariabilityPrediction::Variation);
}

TEST(Pipeline, PredictorSaveLoadRoundTrip) {
  const Corpus corpus = learnable_corpus(100, 3);
  const Labeler labeler(corpus);
  TrainerConfig tc;
  tc.variation_confidence = 0.25;
  const TrainedPredictor predictor = PredictorTrainer(tc).train(corpus, labeler);
  std::stringstream ss;
  predictor.save(ss);
  const TrainedPredictor loaded = TrainedPredictor::load(ss);
  EXPECT_TRUE(loaded.ready());
  EXPECT_EQ(loaded.scope(), predictor.scope());
  EXPECT_DOUBLE_EQ(loaded.variation_confidence(), 0.25);
  Rng rng(4);
  for (int i = 0; i < 40; ++i) {
    std::vector<double> x(kF, 0.0);
    x[0] = rng.uniform(0.0, 1.0);
    x[5] = rng.uniform(0.0, 1.0);
    EXPECT_EQ(loaded.predict(x), predictor.predict(x));
  }
}

TEST(Pipeline, LoadRejectsGarbage) {
  std::stringstream bad("nonsense 1\n");
  EXPECT_THROW((void)TrainedPredictor::load(bad), ParseError);
}

TEST(Pipeline, RfeSelectionShrinksFeatureSet) {
  const Corpus corpus = learnable_corpus(100, 5);
  const Labeler labeler(corpus);
  TrainerConfig tc;
  tc.model_name = "decision_forest";
  tc.run_rfe = true;
  tc.rfe.min_features = 8;
  tc.rfe.cv_folds = 3;
  tc.rfe.step_fraction = 0.5;
  const TrainedPredictor predictor = PredictorTrainer(tc).train(corpus, labeler);
  EXPECT_FALSE(predictor.selected_features().empty());
  EXPECT_LT(predictor.selected_features().size(), kF);
  // Prediction still works from full-width feature vectors.
  std::vector<double> x(kF, 0.0);
  x[0] = 0.9;
  (void)predictor.predict(x);
}

TEST(Pipeline, ConfidenceGateDowngradesWeakVariationCalls) {
  const Corpus corpus = learnable_corpus(120, 6);
  const Labeler labeler(corpus);
  TrainerConfig open_gate;
  open_gate.variation_confidence = 0.0;
  TrainerConfig closed_gate;
  closed_gate.variation_confidence = 0.999;  // effectively never emit class 2
  const TrainedPredictor open = PredictorTrainer(open_gate).train(corpus, labeler);
  const TrainedPredictor closed = PredictorTrainer(closed_gate).train(corpus, labeler);
  std::vector<double> congested(kF, 0.0);
  for (std::size_t f = 0; f < 24; ++f) congested[f] = 0.95;
  EXPECT_EQ(open.predict(congested), sched::VariabilityPrediction::Variation);
  EXPECT_EQ(closed.predict(congested), sched::VariabilityPrediction::LittleVariation);
}

TEST(Pipeline, UnreadyPredictorRejectsUse) {
  const TrainedPredictor empty;
  EXPECT_FALSE(empty.ready());
  std::vector<double> x(kF, 0.0);
  EXPECT_THROW((void)empty.predict(x), PreconditionError);
  std::stringstream ss;
  EXPECT_THROW(empty.save(ss), PreconditionError);
}

TEST(Pipeline, PredictRejectsWrongWidth) {
  const Corpus corpus = learnable_corpus(60, 7);
  const Labeler labeler(corpus);
  const TrainedPredictor predictor = PredictorTrainer().train(corpus, labeler);
  EXPECT_THROW((void)predictor.predict(std::vector<double>(10, 0.0)), PreconditionError);
}

}  // namespace
}  // namespace rush::core
