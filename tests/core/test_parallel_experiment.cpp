// Determinism and isolation of the parallel trial path: the task pool
// must be a pure wall-clock optimization — every observable (TrialResult
// vectors, event-trace bytes, corpus contents) is required to be
// identical for any worker count.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "core/collector.hpp"
#include "core/experiment.hpp"
#include "obs/trace.hpp"

namespace rush::core {
namespace {

constexpr std::size_t kF = telemetry::FeatureAssembler::kNumFeatures;

/// Small synthetic corpus over the real seven proxy apps (the
/// test_experiment.cpp pattern) so trials run without a collection
/// campaign.
Corpus synthetic_corpus(std::uint64_t seed) {
  Rng rng(seed);
  Corpus c;
  const auto names = apps::proxy_app_names();
  for (std::size_t a = 0; a < names.size(); ++a) {
    const auto app = *apps::find_app(names[a]);
    for (int i = 0; i < 60; ++i) {
      CollectedSample s;
      s.app = names[a];
      s.app_index = static_cast<int>(a);
      s.workload = app.workload;
      s.node_count = 16;
      const double congestion =
          rng.bernoulli(0.15) ? rng.uniform(0.5, 1.0) : rng.uniform(0.0, 0.25);
      s.runtime_s = app.base_runtime_s * (1.0 + 0.5 * congestion) +
                    rng.normal(0.0, app.base_runtime_s * 0.01);
      s.features_all.assign(kF, 0.0);
      s.features_job.assign(kF, 0.0);
      s.features_all[0] = congestion;
      s.features_job[0] = congestion;
      c.add(std::move(s));
    }
  }
  return c;
}

void expect_trials_identical(const std::vector<TrialResult>& a,
                             const std::vector<TrialResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    SCOPED_TRACE("trial " + std::to_string(t));
    EXPECT_EQ(a[t].policy, b[t].policy);
    EXPECT_EQ(a[t].seed, b[t].seed);
    EXPECT_EQ(a[t].makespan_s, b[t].makespan_s);  // bit-identical, not just close
    EXPECT_EQ(a[t].total_skips, b[t].total_skips);
    EXPECT_EQ(a[t].oracle_evaluations, b[t].oracle_evaluations);
    ASSERT_EQ(a[t].jobs.size(), b[t].jobs.size());
    for (std::size_t j = 0; j < a[t].jobs.size(); ++j) {
      const JobOutcome& ja = a[t].jobs[j];
      const JobOutcome& jb = b[t].jobs[j];
      EXPECT_EQ(ja.app, jb.app);
      EXPECT_EQ(ja.node_count, jb.node_count);
      EXPECT_EQ(ja.submit_s, jb.submit_s);
      EXPECT_EQ(ja.wait_s, jb.wait_s);
      EXPECT_EQ(ja.runtime_s, jb.runtime_s);
      EXPECT_EQ(ja.slowdown, jb.slowdown);
      EXPECT_EQ(ja.submitted_at_start, jb.submitted_at_start);
      EXPECT_EQ(ja.backfilled, jb.backfilled);
      EXPECT_EQ(ja.skips, jb.skips);
    }
  }
}

ExperimentSpec tiny_adaa() {
  ExperimentSpec spec = experiment_spec(ExperimentId::ADAA);
  spec.num_jobs = 21;  // keep the differential quick
  return spec;
}

TEST(ParallelExperiment, SerialAndParallelRunsAreBitIdentical) {
  const Corpus corpus = synthetic_corpus(11);
  const ExperimentSpec spec = tiny_adaa();

  ExperimentConfig serial_config;
  serial_config.trials_per_policy = 2;
  serial_config.jobs = 1;
  ExperimentRunner serial_runner(corpus, serial_config);
  const ExperimentResult serial = serial_runner.run(spec);

  ExperimentConfig parallel_config = serial_config;
  parallel_config.jobs = 4;  // dedicated 4-wide pool, real threads
  ExperimentRunner parallel_runner(corpus, parallel_config);
  const ExperimentResult parallel = parallel_runner.run(spec);

  expect_trials_identical(serial.baseline, parallel.baseline);
  expect_trials_identical(serial.rush, parallel.rush);
}

TEST(ParallelExperiment, TraceBytesAreIdenticalAcrossWorkerCounts) {
  const Corpus corpus = synthetic_corpus(12);
  const ExperimentSpec spec = tiny_adaa();

  auto traced_run = [&](int jobs) {
    std::ostringstream sink;
    obs::EventTrace trace(sink);
    ExperimentConfig config;
    config.trials_per_policy = 2;
    config.jobs = jobs;
    config.trace = &trace;
    ExperimentRunner runner(corpus, config);
    (void)runner.run(spec);
    trace.flush();
    return sink.str();
  };

  const std::string serial_trace = traced_run(1);
  const std::string parallel_trace = traced_run(4);
  EXPECT_FALSE(serial_trace.empty());
  EXPECT_EQ(serial_trace, parallel_trace);
}

TEST(ParallelExperiment, EnvironmentsStayIsolatedAcrossConcurrentTrials) {
  // Regression guard for cross-trial shared mutable state: a trial run
  // alone must equal the same trial run while three others execute
  // concurrently on the same runner. Any leakage through a shared cache
  // or static would perturb at least one observable.
  const Corpus corpus = synthetic_corpus(13);
  const ExperimentSpec spec = tiny_adaa();

  ExperimentConfig lone_config;
  lone_config.trials_per_policy = 1;
  lone_config.jobs = 1;
  ExperimentRunner lone_runner(corpus, lone_config);
  const ExperimentResult lone = lone_runner.run(spec);

  ExperimentConfig crowd_config;
  crowd_config.trials_per_policy = 2;  // 4 concurrent trials
  crowd_config.jobs = 4;
  ExperimentRunner crowd_runner(corpus, crowd_config);
  const ExperimentResult crowd = crowd_runner.run(spec);

  // Trial 0 shares its seed between the two runs (mix_seed depends only
  // on the workload and trial index).
  expect_trials_identical(lone.baseline, {crowd.baseline[0]});
  expect_trials_identical(lone.rush, {crowd.rush[0]});
}

TEST(ParallelCollector, ShardedCampaignIsWorkerCountInvariant) {
  CollectorConfig cfg;
  cfg.days = 2;
  cfg.sessions_per_day = 1;
  cfg.jobs_per_session = 28;
  cfg.shards = 2;

  cfg.jobs = 1;
  LongitudinalCollector serial(cfg, single_pod_config());
  const Corpus a = serial.collect();

  cfg.jobs = 4;
  LongitudinalCollector parallel(cfg, single_pod_config());
  const Corpus b = parallel.collect();

  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 0u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("sample " + std::to_string(i));
    const CollectedSample& sa = a.samples()[i];
    const CollectedSample& sb = b.samples()[i];
    EXPECT_EQ(sa.app, sb.app);
    EXPECT_EQ(sa.start_s, sb.start_s);
    EXPECT_EQ(sa.runtime_s, sb.runtime_s);
    EXPECT_EQ(sa.features_all, sb.features_all);
    EXPECT_EQ(sa.features_job, sb.features_job);
  }
}

TEST(ParallelCollector, SingleShardMatchesLegacySerialCampaign) {
  // shards == 1 must stay byte-compatible with the legacy path no matter
  // the worker policy (there is nothing to fan out).
  CollectorConfig cfg;
  cfg.days = 1;
  cfg.sessions_per_day = 1;
  cfg.jobs_per_session = 21;

  cfg.jobs = 1;
  LongitudinalCollector serial(cfg, single_pod_config());
  std::ostringstream serial_csv;
  serial.collect().to_csv(serial_csv);

  cfg.jobs = 4;
  LongitudinalCollector parallel(cfg, single_pod_config());
  std::ostringstream parallel_csv;
  parallel.collect().to_csv(parallel_csv);

  EXPECT_EQ(serial_csv.str(), parallel_csv.str());
}

}  // namespace
}  // namespace rush::core
