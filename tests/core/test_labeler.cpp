#include "core/labeler.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace rush::core {
namespace {

CollectedSample make_sample(const std::string& app, int app_index, double runtime) {
  CollectedSample s;
  s.app = app;
  s.app_index = app_index;
  s.node_count = 16;
  s.runtime_s = runtime;
  s.features_all.assign(telemetry::FeatureAssembler::kNumFeatures, runtime);
  s.features_job.assign(telemetry::FeatureAssembler::kNumFeatures, runtime + 1.0);
  return s;
}

/// App "A": mean 100, sample sd 10 (many points); app "B": mean 500, sd 50.
Corpus reference_corpus() {
  Corpus c;
  Rng rng(1);
  for (int i = 0; i < 400; ++i) c.add(make_sample("A", 0, rng.normal(100.0, 10.0)));
  for (int i = 0; i < 400; ++i) c.add(make_sample("B", 1, rng.normal(500.0, 50.0)));
  return c;
}

TEST(Labeler, ZscoreIsPerApplication) {
  const Corpus c = reference_corpus();
  const Labeler labeler(c);
  EXPECT_NEAR(labeler.zscore("A", 100.0), 0.0, 0.2);
  EXPECT_NEAR(labeler.zscore("A", 120.0), 2.0, 0.3);
  // The same absolute runtime means something different per app.
  EXPECT_NEAR(labeler.zscore("B", 500.0), 0.0, 0.2);
  EXPECT_GT(labeler.zscore("A", 500.0), 10.0);
}

TEST(Labeler, BinaryLabelAtOnePointFiveSigma) {
  const Corpus c = reference_corpus();
  const Labeler labeler(c);
  EXPECT_EQ(labeler.binary_label("A", 100.0), 0);
  EXPECT_EQ(labeler.binary_label("A", 113.0), 0);   // ~1.3 sigma
  EXPECT_EQ(labeler.binary_label("A", 118.0), 1);   // ~1.8 sigma
  EXPECT_TRUE(labeler.is_variation("A", 130.0));
  EXPECT_FALSE(labeler.is_variation("A", 60.0));  // fast runs are not variation
}

TEST(Labeler, ThreeClassThresholds) {
  const Corpus c = reference_corpus();
  const Labeler labeler(c);
  EXPECT_EQ(labeler.three_class_label("A", 100.0), 0);
  EXPECT_EQ(labeler.three_class_label("A", 113.5), 1);  // between 1.2 and 1.5 sigma
  EXPECT_EQ(labeler.three_class_label("A", 125.0), 2);
}

TEST(Labeler, CustomThresholds) {
  const Corpus c = reference_corpus();
  const Labeler strict(c, LabelThresholds{0.5, 1.0});
  EXPECT_EQ(strict.three_class_label("A", 107.0), 1);  // ~0.7 sigma
  EXPECT_EQ(strict.three_class_label("A", 112.0), 2);  // ~1.2 sigma
}

TEST(Labeler, DegenerateSpreadNeverLabelsVariation) {
  Corpus c;
  for (int i = 0; i < 5; ++i) c.add(make_sample("Const", 0, 100.0));
  const Labeler labeler(c);
  EXPECT_EQ(labeler.zscore("Const", 1000.0), 0.0);
  EXPECT_EQ(labeler.binary_label("Const", 1000.0), 0);
}

TEST(Labeler, KnowsApp) {
  const Corpus c = reference_corpus();
  const Labeler labeler(c);
  EXPECT_TRUE(labeler.knows_app("A"));
  EXPECT_FALSE(labeler.knows_app("Z"));
  EXPECT_THROW((void)labeler.zscore("Z", 1.0), PreconditionError);
}

TEST(Labeler, BinaryDatasetUsesScopeFeaturesAndGroups) {
  Corpus c;
  c.add(make_sample("A", 0, 100.0));
  c.add(make_sample("A", 0, 110.0));
  c.add(make_sample("B", 1, 200.0));
  c.add(make_sample("B", 1, 220.0));
  const Labeler labeler(c);
  const ml::Dataset all = labeler.binary_dataset(c, telemetry::AggregationScope::AllNodes);
  const ml::Dataset job = labeler.binary_dataset(c, telemetry::AggregationScope::JobNodes);
  ASSERT_EQ(all.rows(), 4u);
  EXPECT_EQ(all.cols(), telemetry::FeatureAssembler::kNumFeatures);
  EXPECT_DOUBLE_EQ(all.row(0)[0], 100.0);
  EXPECT_DOUBLE_EQ(job.row(0)[0], 101.0);  // the job-scope variant
  EXPECT_EQ(all.group(0), 0);
  EXPECT_EQ(all.group(2), 1);
}

TEST(Labeler, ThreeClassDatasetLabelsMatchDirectCalls) {
  const Corpus c = reference_corpus();
  const Labeler labeler(c);
  const ml::Dataset three = labeler.three_class_dataset(c, telemetry::AggregationScope::AllNodes);
  for (std::size_t i = 0; i < c.size(); ++i) {
    const auto& s = c.samples()[i];
    EXPECT_EQ(three.label(i), labeler.three_class_label(s.app, s.runtime_s));
  }
}

TEST(Labeler, LabelRatesAreImbalanced) {
  // Normal data: roughly 6-7% of runs sit above 1.5 sigma.
  const Corpus c = reference_corpus();
  const Labeler labeler(c);
  const ml::Dataset binary = labeler.binary_dataset(c, telemetry::AggregationScope::AllNodes);
  const auto counts = binary.class_counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_GT(counts[0], 8 * counts[1]);
  EXPECT_GT(counts[1], 0u);
}

TEST(Labeler, RejectsBadConstruction) {
  EXPECT_THROW(Labeler(Corpus{}), PreconditionError);
  const Corpus c = reference_corpus();
  EXPECT_THROW(Labeler(c, LabelThresholds{1.5, 1.2}), PreconditionError);  // inverted
  EXPECT_THROW(Labeler(c, LabelThresholds{0.0, 1.0}), PreconditionError);
}

}  // namespace
}  // namespace rush::core
