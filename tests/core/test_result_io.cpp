#include "core/result_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace rush::core {
namespace {

TrialResult make_trial(const std::string& policy, std::uint64_t seed, int jobs) {
  TrialResult trial;
  trial.policy = policy;
  trial.seed = seed;
  trial.makespan_s = 1234.5;
  trial.total_skips = 42;
  trial.oracle_evaluations = 99;
  for (int i = 0; i < jobs; ++i) {
    JobOutcome job;
    job.app = i % 2 == 0 ? "AMG" : "Laghos";
    job.node_count = 16;
    job.submit_s = 10.0 * i;
    job.wait_s = 5.5 * i;
    job.runtime_s = 100.0 + i;
    job.slowdown = 1.0 + 0.01 * i;
    job.submitted_at_start = i == 0;
    job.backfilled = i == 1;
    job.skips = i;
    trial.jobs.push_back(std::move(job));
  }
  return trial;
}

TEST(ResultIo, TrialsRoundTrip) {
  std::vector<TrialResult> trials{make_trial("fcfs-easy", 7, 3), make_trial("rush", 7, 3)};
  std::stringstream ss;
  save_trials_csv(trials, ss);
  const auto back = load_trials_csv(ss);
  ASSERT_EQ(back.size(), 2u);
  // std::map ordering: "fcfs-easy" < "rush".
  const TrialResult& fcfs = back[0];
  EXPECT_EQ(fcfs.policy, "fcfs-easy");
  EXPECT_EQ(fcfs.seed, 7u);
  EXPECT_DOUBLE_EQ(fcfs.makespan_s, 1234.5);
  EXPECT_EQ(fcfs.total_skips, 42u);
  ASSERT_EQ(fcfs.jobs.size(), 3u);
  EXPECT_EQ(fcfs.jobs[1].app, "Laghos");
  EXPECT_TRUE(fcfs.jobs[1].backfilled);
  EXPECT_NEAR(fcfs.jobs[2].slowdown, 1.02, 1e-9);
  EXPECT_TRUE(fcfs.jobs[0].submitted_at_start);
}

TEST(ResultIo, MultipleTrialsPerPolicyKeepIdentity) {
  std::vector<TrialResult> trials{make_trial("rush", 1, 2), make_trial("rush", 2, 4)};
  std::stringstream ss;
  save_trials_csv(trials, ss);
  const auto back = load_trials_csv(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].jobs.size(), 2u);
  EXPECT_EQ(back[1].jobs.size(), 4u);
  EXPECT_EQ(back[0].seed, 1u);
  EXPECT_EQ(back[1].seed, 2u);
}

TEST(ResultIo, LoadRejectsGarbage) {
  std::stringstream bad("not,a,header\n1,2,3\n");
  EXPECT_THROW((void)load_trials_csv(bad), ParseError);
  std::stringstream empty("");
  EXPECT_THROW((void)load_trials_csv(empty), ParseError);
}

TEST(ResultIo, ExperimentSaveLoad) {
  ExperimentResult result;
  result.spec = experiment_spec(ExperimentId::ADAA);
  result.baseline = {make_trial("fcfs-easy", 5, 2)};
  result.rush = {make_trial("rush", 5, 2)};
  const auto path = std::filesystem::temp_directory_path() / "rush_test_experiment.csv";
  save_experiment(result, path);
  const ExperimentResult back = load_experiment(result.spec, path);
  EXPECT_EQ(back.spec.code, "ADAA");
  ASSERT_EQ(back.baseline.size(), 1u);
  ASSERT_EQ(back.rush.size(), 1u);
  EXPECT_EQ(back.rush[0].jobs.size(), 2u);
  std::filesystem::remove(path);
}

TEST(ResultIo, LoadExperimentRequiresBothPolicies) {
  const auto path = std::filesystem::temp_directory_path() / "rush_test_experiment2.csv";
  {
    std::ofstream os(path);
    save_trials_csv({make_trial("rush", 1, 1)}, os);  // rush only
  }
  EXPECT_THROW((void)load_experiment(experiment_spec(ExperimentId::ADAA), path), ParseError);
  std::filesystem::remove(path);
  EXPECT_THROW((void)load_experiment(experiment_spec(ExperimentId::ADAA), path), ParseError);
}

TEST(ResultIo, DefaultCachePathUsesEnv) {
  const auto path = default_experiment_cache("XYZ");
  EXPECT_NE(path.string().find("rush_experiment_XYZ.csv"), std::string::npos);
}

}  // namespace
}  // namespace rush::core
