#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/report.hpp"

namespace rush::core {
namespace {

TEST(ExperimentSpec, TableTwoDefinitions) {
  const auto specs = all_experiments();
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].code, "ADAA");
  EXPECT_EQ(specs[0].num_jobs, 190);
  EXPECT_EQ(specs[0].run_apps.size(), 7u);
  EXPECT_TRUE(specs[0].train_apps.empty());

  EXPECT_EQ(specs[1].code, "ADPA");
  EXPECT_EQ(specs[1].num_jobs, 150);
  EXPECT_EQ(specs[1].run_apps, (std::vector<std::string>{"Laghos", "LBANN", "PENNANT"}));
  EXPECT_TRUE(specs[1].train_apps.empty());

  EXPECT_EQ(specs[2].code, "PDPA");
  EXPECT_EQ(specs[2].train_apps,
            (std::vector<std::string>{"AMG", "Kripke", "sw4lite", "SWFFT"}));

  EXPECT_EQ(specs[3].code, "WS");
  EXPECT_EQ(specs[3].node_counts, (std::vector<int>{8, 16, 32}));
  EXPECT_EQ(specs[3].scaling, apps::ScalingMode::Weak);

  EXPECT_EQ(specs[4].code, "SS");
  EXPECT_EQ(specs[4].scaling, apps::ScalingMode::Strong);
}

constexpr std::size_t kF = telemetry::FeatureAssembler::kNumFeatures;

/// Small synthetic corpus over the real seven proxy apps so the runner
/// can label and train without a full collection campaign.
Corpus synthetic_corpus(std::uint64_t seed) {
  Rng rng(seed);
  Corpus c;
  const auto names = apps::proxy_app_names();
  for (std::size_t a = 0; a < names.size(); ++a) {
    const auto app = *apps::find_app(names[a]);
    for (int i = 0; i < 60; ++i) {
      CollectedSample s;
      s.app = names[a];
      s.app_index = static_cast<int>(a);
      s.workload = app.workload;
      s.node_count = 16;
      const double congestion =
          rng.bernoulli(0.15) ? rng.uniform(0.5, 1.0) : rng.uniform(0.0, 0.25);
      s.runtime_s = app.base_runtime_s * (1.0 + 0.5 * congestion) +
                    rng.normal(0.0, app.base_runtime_s * 0.01);
      s.features_all.assign(kF, 0.0);
      s.features_job.assign(kF, 0.0);
      s.features_all[0] = congestion;
      s.features_job[0] = congestion;
      c.add(std::move(s));
    }
  }
  return c;
}

TEST(ExperimentRunner, TrainsPredictorHonoringTrainApps) {
  ExperimentRunner runner(synthetic_corpus(1));
  const auto pdpa = experiment_spec(ExperimentId::PDPA);
  const TrainedPredictor predictor = runner.train_predictor(pdpa);
  EXPECT_TRUE(predictor.ready());
  const auto adaa = experiment_spec(ExperimentId::ADAA);
  EXPECT_TRUE(runner.train_predictor(adaa).ready());
}

TEST(ExperimentRunner, TinyTrialRunsBothPolicies) {
  ExperimentConfig config;
  config.trials_per_policy = 1;
  ExperimentRunner runner(synthetic_corpus(2), config);
  ExperimentSpec spec = experiment_spec(ExperimentId::ADAA);
  spec.num_jobs = 21;  // keep the test quick
  const TrainedPredictor predictor = runner.train_predictor(spec);

  const TrialResult base = runner.run_trial(spec, false, 99, nullptr);
  EXPECT_EQ(base.policy, "fcfs-easy");
  EXPECT_EQ(base.jobs.size(), 21u);
  EXPECT_EQ(base.total_skips, 0u);
  EXPECT_EQ(base.oracle_evaluations, 0u);
  EXPECT_GT(base.makespan_s, 0.0);

  const TrialResult rush = runner.run_trial(spec, true, 99, &predictor);
  EXPECT_EQ(rush.policy, "rush");
  EXPECT_EQ(rush.jobs.size(), 21u);
  EXPECT_GT(rush.oracle_evaluations, 0u);
}

TEST(ExperimentRunner, BaselineTrialsAreSeedDeterministic) {
  ExperimentConfig config;
  config.trials_per_policy = 1;
  ExperimentRunner runner(synthetic_corpus(3), config);
  ExperimentSpec spec = experiment_spec(ExperimentId::ADPA);
  spec.num_jobs = 15;
  const TrialResult a = runner.run_trial(spec, false, 7, nullptr);
  const TrialResult b = runner.run_trial(spec, false, 7, nullptr);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].app, b.jobs[i].app);
    EXPECT_DOUBLE_EQ(a.jobs[i].runtime_s, b.jobs[i].runtime_s);
  }
  const TrialResult c = runner.run_trial(spec, false, 8, nullptr);
  EXPECT_NE(a.makespan_s, c.makespan_s);
}

TEST(ExperimentRunner, ScalingExperimentUsesAllNodeCounts) {
  ExperimentConfig config;
  config.trials_per_policy = 1;
  ExperimentRunner runner(synthetic_corpus(4), config);
  ExperimentSpec spec = experiment_spec(ExperimentId::SS);
  spec.num_jobs = 42;
  const TrialResult trial = runner.run_trial(spec, false, 11, nullptr);
  int eight = 0, sixteen = 0, thirty_two = 0;
  for (const JobOutcome& job : trial.jobs) {
    if (job.node_count == 8) ++eight;
    if (job.node_count == 16) ++sixteen;
    if (job.node_count == 32) ++thirty_two;
  }
  EXPECT_GT(eight, 0);
  EXPECT_GT(sixteen, 0);
  EXPECT_GT(thirty_two, 0);
  EXPECT_EQ(eight + sixteen + thirty_two, 42);
}

TEST(Report, AggregationHelpers) {
  TrialResult t1, t2;
  t1.makespan_s = 100.0;
  t2.makespan_s = 200.0;
  JobOutcome a;
  a.app = "X";
  a.runtime_s = 10.0;
  a.wait_s = 5.0;
  a.node_count = 16;
  JobOutcome b = a;
  b.runtime_s = 20.0;
  b.wait_s = 15.0;
  b.submitted_at_start = true;
  t1.jobs = {a, b};
  t2.jobs = {a};
  const std::vector<TrialResult> trials{t1, t2};

  EXPECT_DOUBLE_EQ(mean_makespan(trials), 150.0);
  const auto waits = mean_wait_times(trials, /*exclude_initial=*/true);
  EXPECT_DOUBLE_EQ(waits.at("X"), 5.0);  // job b excluded
  const auto waits_all = mean_wait_times(trials, false);
  EXPECT_NEAR(waits_all.at("X"), (5.0 + 15.0 + 5.0) / 3.0, 1e-12);

  const auto runtimes = runtimes_for(trials, "X");
  EXPECT_EQ(runtimes.size(), 3u);
  const auto summaries = runtime_summaries(trials);
  EXPECT_DOUBLE_EQ(summaries.at("X").max, 20.0);

  // Node-count filter.
  EXPECT_TRUE(runtimes_for(trials, "X", 8).empty());
  EXPECT_EQ(runtimes_for(trials, "X", 16).size(), 3u);
}

TEST(Report, MaxRuntimeImprovement) {
  TrialResult base, rush;
  JobOutcome job;
  job.app = "X";
  job.node_count = 16;
  job.runtime_s = 200.0;
  base.jobs = {job};
  job.runtime_s = 150.0;
  rush.jobs = {job};
  const auto improvement =
      max_runtime_improvement(std::vector<TrialResult>{base}, std::vector<TrialResult>{rush});
  EXPECT_NEAR(improvement.at("X"), 25.0, 1e-12);
}

}  // namespace
}  // namespace rush::core
