#include "core/environment.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/rush_oracle.hpp"
#include "core/pipeline.hpp"
#include "telemetry/schema.hpp"

namespace rush::core {
namespace {

TEST(Environment, SinglePodDefaultsMatchTheReservation) {
  const Environment env{single_pod_config(1)};
  EXPECT_EQ(env.config().tree.pods, 1);
  EXPECT_EQ(env.pod_nodes().size(), 512u);
}

TEST(Environment, ComponentsAreWiredTogether) {
  Environment env{single_pod_config(2)};
  EXPECT_EQ(env.store().num_counters(), telemetry::num_counters());
  EXPECT_EQ(env.store().managed_nodes().size(), 512u);
  EXPECT_DOUBLE_EQ(env.features().window_s(), env.config().feature_window_s);
  // Sampler writes into the store.
  env.sampler().sample_now();
  EXPECT_EQ(env.store().frame_count(), 1u);
}

TEST(Environment, RngForIsDeterministicPerTag) {
  Environment a{single_pod_config(3)};
  Environment b{single_pod_config(3)};
  auto ra = a.rng_for(0xABC);
  auto rb = b.rng_for(0xABC);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(ra.next(), rb.next());
  auto rc = a.rng_for(0xDEF);
  auto rd = a.rng_for(0xDEF);
  // Same tag drawn later in the parent stream yields a different stream:
  // tags are not a pure keyed derivation, they consume parent state.
  EXPECT_NE(rc.next(), rd.next());
}

TEST(Environment, RejectsBadTelemetryPod) {
  EnvironmentConfig cfg = single_pod_config(4);
  cfg.telemetry_pod = 5;  // only one pod exists
  EXPECT_THROW(Environment{cfg}, PreconditionError);
}

TEST(Environment, BackgroundDrivesAmbientLoad) {
  Environment env{single_pod_config(5)};
  env.background().start();
  env.engine().run_until(600.0);
  double total = 0.0;
  for (int e = 0; e < env.tree().num_edges(); ++e)
    total += env.network().link_load_gbps(env.tree().edge_uplink(e));
  EXPECT_GT(total, 0.0);
}

constexpr std::size_t kF = telemetry::FeatureAssembler::kNumFeatures;

Corpus tiny_corpus() {
  Rng rng(6);
  Corpus c;
  for (int i = 0; i < 80; ++i) {
    CollectedSample s;
    s.app = "AMG";
    s.app_index = 0;
    s.node_count = 16;
    const double congestion = rng.uniform(0.0, 1.0);
    s.runtime_s = 100.0 * (1.0 + congestion);
    s.features_all.assign(kF, congestion);
    s.features_job.assign(kF, congestion);
    c.add(std::move(s));
  }
  // Second app so leave-one-group-out style helpers stay happy.
  for (int i = 0; i < 40; ++i) {
    CollectedSample s;
    s.app = "Kripke";
    s.app_index = 1;
    s.node_count = 16;
    s.runtime_s = 200.0 + i;
    s.features_all.assign(kF, 0.1);
    s.features_job.assign(kF, 0.1);
    c.add(std::move(s));
  }
  return c;
}

TEST(RushOracle, EvaluatesThePredictorOnLiveTelemetry) {
  Environment env{single_pod_config(7)};
  env.sampler().start();
  env.engine().run_until(300.0);

  const Corpus corpus = tiny_corpus();
  const Labeler labeler(corpus);
  const TrainedPredictor predictor = PredictorTrainer().train(corpus, labeler);
  RushOracle oracle(env, predictor);

  sched::Job job;
  job.spec.app = *apps::find_app("AMG");
  cluster::NodeSet nodes;
  for (int i = 0; i < 16; ++i) nodes.push_back(i);

  EXPECT_EQ(oracle.evaluations(), 0u);
  const auto prediction = oracle.predict(job, nodes);
  EXPECT_EQ(oracle.evaluations(), 1u);
  // Live (calm) telemetry should not look like the congested tail.
  EXPECT_NE(prediction, sched::VariabilityPrediction::Variation);
  (void)oracle.predict(job, nodes);
  EXPECT_EQ(oracle.evaluations(), 2u);
}

TEST(RushOracle, CachesCounterAggregatesPerEventTime) {
  Environment env{single_pod_config(9)};
  env.sampler().start();
  env.engine().run_until(300.0);

  const Corpus corpus = tiny_corpus();
  const Labeler labeler(corpus);
  const TrainedPredictor predictor = PredictorTrainer().train(corpus, labeler);
  RushOracle oracle(env, predictor);

  sched::Job job;
  job.spec.app = *apps::find_app("AMG");
  cluster::NodeSet nodes;
  for (int i = 0; i < 16; ++i) nodes.push_back(i);

  // Same event time, same store content: the first probe aggregates, the
  // rest hit the cache.
  (void)oracle.predict(job, nodes);
  EXPECT_EQ(oracle.counter_cache_misses(), 1u);
  EXPECT_EQ(oracle.counter_cache_hits(), 0u);
  (void)oracle.predict(job, nodes);
  (void)oracle.predict(job, nodes);
  EXPECT_EQ(oracle.counter_cache_misses(), 1u);
  EXPECT_EQ(oracle.counter_cache_hits(), 2u);

  // New frames invalidate: the store revision moved.
  env.engine().run_until(400.0);
  (void)oracle.predict(job, nodes);
  EXPECT_EQ(oracle.counter_cache_misses(), 2u);
  EXPECT_EQ(oracle.counter_cache_hits(), 2u);
}

TEST(RushOracle, CachedPredictionsMatchUncachedOracle) {
  // Two oracles over identically-seeded environments must emit identical
  // predictions whether or not their caches are warm — the cache must be
  // behavior-invisible.
  const Corpus corpus = tiny_corpus();
  const Labeler labeler(corpus);
  const TrainedPredictor predictor = PredictorTrainer().train(corpus, labeler);

  sched::Job job;
  job.spec.app = *apps::find_app("AMG");
  cluster::NodeSet nodes;
  for (int i = 0; i < 16; ++i) nodes.push_back(i);

  std::vector<sched::VariabilityPrediction> warm;
  std::vector<sched::VariabilityPrediction> cold;
  {
    Environment env{single_pod_config(10)};
    env.sampler().start();
    env.engine().run_until(300.0);
    RushOracle oracle(env, predictor);
    for (int i = 0; i < 3; ++i) warm.push_back(oracle.predict(job, nodes));
    EXPECT_GT(oracle.counter_cache_hits(), 0u);
  }
  {
    Environment env{single_pod_config(10)};
    env.sampler().start();
    env.engine().run_until(300.0);
    // A fresh oracle per call: every predict misses its (empty) cache.
    for (int i = 0; i < 3; ++i) {
      RushOracle oracle(env, predictor);
      cold.push_back(oracle.predict(job, nodes));
      EXPECT_EQ(oracle.counter_cache_hits(), 0u);
    }
  }
  EXPECT_EQ(warm, cold);
}

TEST(RushOracle, RequiresAReadyPredictor) {
  Environment env{single_pod_config(8)};
  const TrainedPredictor unready;
  EXPECT_THROW(RushOracle(env, unready), PreconditionError);
}

}  // namespace
}  // namespace rush::core
