#include "core/session.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace rush::core {
namespace {

EnvironmentConfig tiny_env(std::uint64_t seed) {
  EnvironmentConfig cfg = single_pod_config(seed);
  cfg.tree.edges_per_pod = 4;  // 128 nodes keeps the test fast
  return cfg;
}

SessionConfig tiny_session() {
  SessionConfig cfg;
  cfg.apps = {"AMG", "Kripke"};
  cfg.num_jobs = 12;
  cfg.submit_window_s = 300.0;
  return cfg;
}

TEST(Session, RunsWorkloadToCompletion) {
  Environment env(tiny_env(1));
  cluster::NodeAllocator allocator(env.pod_nodes());
  WorkloadSession session(env, allocator, tiny_session(), sched::SchedulerConfig{}, nullptr,
                          env.rng_for(1));
  const TrialResult result = session.run();
  ASSERT_EQ(result.jobs.size(), 12u);
  for (const JobOutcome& job : result.jobs) {
    EXPECT_GT(job.runtime_s, 0.0);
    EXPECT_GE(job.wait_s, 0.0);
    EXPECT_GE(job.slowdown, 1.0);
  }
  EXPECT_GT(result.makespan_s, 0.0);
  EXPECT_EQ(result.total_skips, 0u);  // no RUSH
  // All allocated nodes were returned.
  EXPECT_EQ(allocator.free_count(), allocator.managed_count());
}

TEST(Session, JobMixCyclesOverAppsAndNodeCounts) {
  Environment env(tiny_env(2));
  cluster::NodeAllocator allocator(env.pod_nodes());
  SessionConfig cfg = tiny_session();
  cfg.num_jobs = 12;
  cfg.node_counts = {8, 16};
  WorkloadSession session(env, allocator, cfg, sched::SchedulerConfig{}, nullptr,
                          env.rng_for(2));
  const TrialResult result = session.run();
  int amg = 0, kripke = 0, eight = 0, sixteen = 0;
  for (const JobOutcome& job : result.jobs) {
    if (job.app == "AMG") ++amg;
    if (job.app == "Kripke") ++kripke;
    if (job.node_count == 8) ++eight;
    if (job.node_count == 16) ++sixteen;
  }
  EXPECT_EQ(amg, 6);
  EXPECT_EQ(kripke, 6);
  EXPECT_EQ(eight + sixteen, 12);
  EXPECT_GT(eight, 0);
  EXPECT_GT(sixteen, 0);
}

TEST(Session, InitialFractionSubmitsAtSessionStart) {
  Environment env(tiny_env(3));
  cluster::NodeAllocator allocator(env.pod_nodes());
  SessionConfig cfg = tiny_session();
  cfg.num_jobs = 20;
  cfg.initial_fraction = 0.2;
  WorkloadSession session(env, allocator, cfg, sched::SchedulerConfig{}, nullptr,
                          env.rng_for(3));
  const TrialResult result = session.run();
  int at_start = 0;
  for (const JobOutcome& job : result.jobs) {
    if (job.submitted_at_start) {
      ++at_start;
      EXPECT_DOUBLE_EQ(job.submit_s, 0.0);
    } else {
      EXPECT_GT(job.submit_s, 0.0);
      EXPECT_LE(job.submit_s, cfg.submit_window_s);
    }
  }
  EXPECT_EQ(at_start, 4);  // 20% of 20
}

TEST(Session, HooksSeeEveryJobExactlyOnce) {
  Environment env(tiny_env(4));
  cluster::NodeAllocator allocator(env.pod_nodes());
  WorkloadSession session(env, allocator, tiny_session(), sched::SchedulerConfig{}, nullptr,
                          env.rng_for(4));
  std::set<sched::JobId> started, completed;
  session.on_start([&](const sched::Job& job) {
    EXPECT_TRUE(started.insert(job.id).second);
    EXPECT_EQ(job.state, sched::JobState::Running);
  });
  session.on_complete([&](const sched::Job& job) {
    EXPECT_TRUE(completed.insert(job.id).second);
    EXPECT_TRUE(started.contains(job.id));
  });
  const TrialResult result = session.run();
  EXPECT_EQ(started.size(), result.jobs.size());
  EXPECT_EQ(completed.size(), result.jobs.size());
}

TEST(Session, StartsRelativeToCurrentSimTime) {
  Environment env(tiny_env(5));
  env.engine().run_until(5000.0);
  cluster::NodeAllocator allocator(env.pod_nodes());
  WorkloadSession session(env, allocator, tiny_session(), sched::SchedulerConfig{}, nullptr,
                          env.rng_for(5));
  const TrialResult result = session.run();
  for (const JobOutcome& job : result.jobs) {
    EXPECT_GE(job.submit_s, 0.0);  // relative to session start
    EXPECT_LE(job.submit_s, 300.0);
  }
  EXPECT_GE(env.engine().now(), 5000.0);
}

TEST(Session, DeterministicForSameSeeds) {
  auto run_once = [] {
    Environment env(tiny_env(42));
    cluster::NodeAllocator allocator(env.pod_nodes());
    WorkloadSession session(env, allocator, tiny_session(), sched::SchedulerConfig{}, nullptr,
                            env.rng_for(7));
    return session.run();
  };
  const TrialResult a = run_once();
  const TrialResult b = run_once();
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].app, b.jobs[i].app);
    EXPECT_DOUBLE_EQ(a.jobs[i].runtime_s, b.jobs[i].runtime_s);
    EXPECT_DOUBLE_EQ(a.jobs[i].wait_s, b.jobs[i].wait_s);
  }
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
}

TEST(Session, RejectsBadConfig) {
  Environment env(tiny_env(6));
  cluster::NodeAllocator allocator(env.pod_nodes());
  SessionConfig bad = tiny_session();
  bad.apps.clear();
  EXPECT_THROW(
      WorkloadSession(env, allocator, bad, sched::SchedulerConfig{}, nullptr, env.rng_for(1)),
      PreconditionError);
  bad = tiny_session();
  bad.walltime_factor_lo = 0.5;
  EXPECT_THROW(
      WorkloadSession(env, allocator, bad, sched::SchedulerConfig{}, nullptr, env.rng_for(1)),
      PreconditionError);
}

}  // namespace
}  // namespace rush::core
