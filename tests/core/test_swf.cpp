#include "core/swf.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace rush::core {
namespace {

TrialResult sample_trial() {
  TrialResult trial;
  trial.policy = "rush";
  JobOutcome a;
  a.app = "AMG";
  a.node_count = 16;
  a.submit_s = 120.0;
  a.wait_s = 30.0;
  a.runtime_s = 250.5;
  a.skips = 2;
  JobOutcome b;
  b.app = "Laghos";
  b.node_count = 8;
  b.submit_s = 0.0;
  b.wait_s = 0.0;
  b.runtime_s = 199.25;
  b.skips = 0;
  trial.jobs = {a, b};  // deliberately out of submit order
  return trial;
}

TEST(Swf, WritesHeaderCommentsAndSortedJobs) {
  std::stringstream ss;
  SwfOptions options;
  options.comments = {"Experiment: ADAA"};
  write_swf(sample_trial(), ss, options);
  const std::string text = ss.str();
  EXPECT_NE(text.find("; SWF trace exported by RUSH (policy: rush)"), std::string::npos);
  EXPECT_NE(text.find("; Experiment: ADAA"), std::string::npos);
  // Job submitted at t=0 (Laghos) must come first.
  const auto first_job = text.find("\n1 0 ");
  const auto second_job = text.find("\n2 120 ");
  EXPECT_NE(first_job, std::string::npos);
  EXPECT_NE(second_job, std::string::npos);
  EXPECT_LT(first_job, second_job);
}

TEST(Swf, EveryJobLineHas18Fields) {
  std::stringstream ss;
  write_swf(sample_trial(), ss);
  std::string line;
  int job_lines = 0;
  while (std::getline(ss, line)) {
    if (line.empty() || line.front() == ';') continue;
    std::istringstream fields(line);
    int count = 0;
    std::string tok;
    while (fields >> tok) ++count;
    EXPECT_EQ(count, 18) << line;
    ++job_lines;
  }
  EXPECT_EQ(job_lines, 2);
}

TEST(Swf, RoundTripPreservesTheMeaningfulFields) {
  std::stringstream ss;
  write_swf(sample_trial(), ss);
  const auto jobs = read_swf(ss);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].job_number, 1);
  EXPECT_DOUBLE_EQ(jobs[0].submit_s, 0.0);
  EXPECT_NEAR(jobs[0].run_s, 199.25, 0.01);
  EXPECT_EQ(jobs[0].procs, 8 * 32);
  EXPECT_EQ(jobs[0].skips, 0);
  EXPECT_EQ(jobs[0].status, 1);
  EXPECT_DOUBLE_EQ(jobs[1].submit_s, 120.0);
  EXPECT_DOUBLE_EQ(jobs[1].wait_s, 30.0);
  EXPECT_EQ(jobs[1].skips, 2);
}

TEST(Swf, CustomCoresPerNode) {
  std::stringstream ss;
  SwfOptions options;
  options.cores_per_node = 4;
  write_swf(sample_trial(), ss, options);
  const auto jobs = read_swf(ss);
  EXPECT_EQ(jobs[0].procs, 8 * 4);
}

TEST(Swf, ReadSkipsCommentsAndBlankLines) {
  std::stringstream ss("; a comment\n\n; another\n");
  EXPECT_TRUE(read_swf(ss).empty());
}

TEST(Swf, ReadRejectsMalformedRecords) {
  std::stringstream ss("1 2 3\n");
  EXPECT_THROW((void)read_swf(ss), ParseError);
}

TEST(Swf, RejectsBadOptions) {
  std::stringstream ss;
  SwfOptions bad;
  bad.cores_per_node = 0;
  EXPECT_THROW(write_swf(sample_trial(), ss, bad), PreconditionError);
}

}  // namespace
}  // namespace rush::core
