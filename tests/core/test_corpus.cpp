#include "core/corpus.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace rush::core {
namespace {

CollectedSample make_sample(const std::string& app, int app_index, double runtime,
                            double fill = 1.0) {
  CollectedSample s;
  s.app = app;
  s.app_index = app_index;
  s.workload = telemetry::WorkloadClass::Network;
  s.node_count = 16;
  s.start_s = 100.0;
  s.runtime_s = runtime;
  s.features_all.assign(telemetry::FeatureAssembler::kNumFeatures, fill);
  s.features_job.assign(telemetry::FeatureAssembler::kNumFeatures, fill * 2.0);
  return s;
}

TEST(Corpus, AddAndAccess) {
  Corpus c;
  EXPECT_TRUE(c.empty());
  c.add(make_sample("AMG", 0, 250.0));
  c.add(make_sample("Laghos", 1, 350.0));
  EXPECT_EQ(c.size(), 2u);
  EXPECT_EQ(c.app_names(), (std::vector<std::string>{"AMG", "Laghos"}));
}

TEST(Corpus, StatsPerApp) {
  Corpus c;
  c.add(make_sample("AMG", 0, 100.0));
  c.add(make_sample("AMG", 0, 200.0));
  c.add(make_sample("AMG", 0, 300.0));
  c.add(make_sample("Laghos", 1, 400.0));
  const AppStats stats = c.stats_for("AMG");
  EXPECT_EQ(stats.runs, 3u);
  EXPECT_DOUBLE_EQ(stats.mean_s, 200.0);
  EXPECT_DOUBLE_EQ(stats.min_s, 100.0);
  EXPECT_DOUBLE_EQ(stats.max_s, 300.0);
  EXPECT_NEAR(stats.stddev_s, 100.0, 1e-9);  // sample stddev of {100,200,300}
  EXPECT_THROW((void)c.stats_for("Unknown"), PreconditionError);
}

TEST(Corpus, AppStatsFollowsFirstSeenOrder) {
  Corpus c;
  c.add(make_sample("Laghos", 1, 350.0));
  c.add(make_sample("AMG", 0, 250.0));
  c.add(make_sample("Laghos", 1, 360.0));
  const auto stats = c.app_stats();
  ASSERT_EQ(stats.size(), 2u);
  EXPECT_EQ(stats[0].app, "Laghos");
  EXPECT_EQ(stats[1].app, "AMG");
}

TEST(Corpus, FilterApps) {
  Corpus c;
  c.add(make_sample("AMG", 0, 100.0));
  c.add(make_sample("Laghos", 1, 200.0));
  c.add(make_sample("AMG", 0, 150.0));
  const Corpus filtered = c.filter_apps({"AMG"});
  EXPECT_EQ(filtered.size(), 2u);
  EXPECT_EQ(filtered.app_names(), std::vector<std::string>{"AMG"});
  EXPECT_TRUE(c.filter_apps({"Nothing"}).empty());
}

TEST(Corpus, CsvRoundTrip) {
  Corpus c;
  c.add(make_sample("AMG", 0, 123.456, 0.5));
  c.add(make_sample("Laghos", 1, 654.321, 2.5));
  std::stringstream ss;
  c.to_csv(ss);
  const Corpus back = Corpus::from_csv(ss);
  ASSERT_EQ(back.size(), 2u);
  const CollectedSample& s = back.samples()[1];
  EXPECT_EQ(s.app, "Laghos");
  EXPECT_EQ(s.app_index, 1);
  EXPECT_EQ(s.workload, telemetry::WorkloadClass::Network);
  EXPECT_EQ(s.node_count, 16);
  EXPECT_NEAR(s.runtime_s, 654.321, 1e-6);
  EXPECT_NEAR(s.features_all[0], 2.5, 1e-9);
  EXPECT_NEAR(s.features_job[0], 5.0, 1e-9);
}

TEST(Corpus, FromCsvRejectsWrongShape) {
  std::stringstream bad("a,b,c\n1,2,3\n");
  EXPECT_THROW((void)Corpus::from_csv(bad), ParseError);
  std::stringstream empty("");
  EXPECT_THROW((void)Corpus::from_csv(empty), ParseError);
}

TEST(Corpus, AddValidatesSample) {
  Corpus c;
  CollectedSample bad = make_sample("AMG", 0, 100.0);
  bad.features_all.resize(3);
  EXPECT_THROW(c.add(bad), PreconditionError);
  CollectedSample zero_runtime = make_sample("AMG", 0, 100.0);
  zero_runtime.runtime_s = 0.0;
  EXPECT_THROW(c.add(zero_runtime), PreconditionError);
}

}  // namespace
}  // namespace rush::core
