#include "sched/scheduler.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <optional>

#include "common/error.hpp"
#include "sim/engine.hpp"

namespace rush::sched {
namespace {

cluster::FatTreeConfig small_config() {
  cluster::FatTreeConfig cfg;
  cfg.pods = 1;
  cfg.edges_per_pod = 2;
  cfg.nodes_per_edge = 32;  // 64 nodes
  return cfg;
}

/// Deterministic app: no traffic, no noise — run time equals base time.
apps::AppProfile quiet_app(double runtime_s) {
  apps::AppProfile app;
  app.name = "quiet";
  app.base_runtime_s = runtime_s;
  app.compute_frac = 1.0;
  app.network_frac = 0.0;
  app.io_frac = 0.0;
  app.net_gbps_per_node = 0.0;
  app.io_gbps_per_node = 0.0;
  app.noise_sigma = 0.0;
  app.serial_fraction = 1.0;  // node-count scaling no-op: runtime == base
  return app;
}

JobSpec make_spec(int nodes, double runtime_s, double walltime_s = 0.0) {
  JobSpec spec;
  spec.app = quiet_app(runtime_s);
  spec.num_nodes = nodes;
  spec.walltime_estimate_s = walltime_s > 0.0 ? walltime_s : runtime_s * 1.2;
  return spec;
}

/// Scripted oracle driven by a lambda.
class ScriptedOracle final : public VariabilityOracle {
 public:
  using Fn = std::function<VariabilityPrediction(const Job&)>;
  explicit ScriptedOracle(Fn fn) : fn_(std::move(fn)) {}
  VariabilityPrediction predict(const Job& job, const cluster::NodeSet&) override {
    ++calls_;
    return fn_(job);
  }
  int calls() const noexcept { return calls_; }

 private:
  Fn fn_;
  int calls_ = 0;
};

struct World {
  World()
      : tree(small_config()), net(tree), fs(1000.0),
        exec(engine, net, fs, exec_config(), Rng(1)),
        allocator(tree.nodes_in_pod(0)) {}

  static apps::ExecutionConfig exec_config() {
    apps::ExecutionConfig cfg;
    cfg.os_noise = 0.0;
    return cfg;
  }

  std::unique_ptr<Scheduler> make(SchedulerConfig config,
                                  VariabilityOracle* oracle = nullptr) {
    return std::make_unique<Scheduler>(engine, allocator, exec, std::make_unique<FcfsPolicy>(),
                                       std::make_unique<FcfsPolicy>(), config, oracle);
  }

  sim::Engine engine;
  cluster::FatTree tree;
  cluster::NetworkModel net;
  cluster::LustreModel fs;
  apps::ExecutionModel exec;
  cluster::NodeAllocator allocator;
};

TEST(Scheduler, RunsJobsImmediatelyWhenTheyFit) {
  World w;
  const auto sched_ptr = w.make(SchedulerConfig{});
  const JobId a = sched_ptr->submit(make_spec(16, 100.0));
  const JobId b = sched_ptr->submit(make_spec(16, 100.0));
  EXPECT_EQ(sched_ptr->running_count(), 2u);
  w.engine.run();
  EXPECT_EQ(sched_ptr->completed_count(), 2u);
  EXPECT_DOUBLE_EQ(sched_ptr->job(a).wait_s(), 0.0);
  EXPECT_DOUBLE_EQ(sched_ptr->job(b).wait_s(), 0.0);
  EXPECT_NEAR(sched_ptr->job(a).runtime_s(), 100.0, 0.5);
  EXPECT_TRUE(sched_ptr->idle());
}

TEST(Scheduler, QueuesWhenFullAndRunsFcfs) {
  World w;
  const auto sched_ptr = w.make(SchedulerConfig{});
  std::vector<JobId> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(sched_ptr->submit(make_spec(16, 100.0)));
  EXPECT_EQ(sched_ptr->running_count(), 4u);  // 64 nodes / 16
  EXPECT_EQ(sched_ptr->queue_length(), 2u);
  w.engine.run();
  EXPECT_EQ(sched_ptr->completed_count(), 6u);
  // The queued jobs start when the first wave completes.
  EXPECT_NEAR(sched_ptr->job(ids[4]).wait_s(), 100.0, 1.0);
  EXPECT_NEAR(sched_ptr->job(ids[5]).wait_s(), 100.0, 1.0);
  EXPECT_NEAR(sched_ptr->makespan(), 200.0, 1.0);
}

TEST(Scheduler, EasyBackfillRunsShortJobsInHoles) {
  World w;
  const auto sched_ptr = w.make(SchedulerConfig{});
  // J0 holds 48 of the 64 nodes for 100 s.
  const JobId j0 = sched_ptr->submit(make_spec(48, 100.0, 100.0));
  // J1 wants the whole machine: reservation at t=100, zero spare nodes.
  const JobId j1 = sched_ptr->submit(make_spec(64, 100.0, 100.0));
  // J2 is short and small: it finishes before the reservation -> backfilled.
  const JobId j2 = sched_ptr->submit(make_spec(16, 50.0, 50.0));
  // J3 is small but too long: it would delay the reservation.
  const JobId j3 = sched_ptr->submit(make_spec(16, 300.0, 300.0));
  w.engine.run();
  EXPECT_DOUBLE_EQ(sched_ptr->job(j0).wait_s(), 0.0);
  EXPECT_NEAR(sched_ptr->job(j1).wait_s(), 100.0, 1.0);
  EXPECT_DOUBLE_EQ(sched_ptr->job(j2).wait_s(), 0.0);
  EXPECT_TRUE(sched_ptr->job(j2).backfilled);
  EXPECT_FALSE(sched_ptr->job(j1).backfilled);
  EXPECT_GE(sched_ptr->job(j3).start_s, sched_ptr->job(j1).start_s);
}

TEST(Scheduler, BackfillCanUseSpareNodesAtReservation) {
  World w;
  const auto sched_ptr = w.make(SchedulerConfig{});
  // J0 holds 48 nodes for 100 s; 16 free now.
  const JobId j0 = sched_ptr->submit(make_spec(48, 100.0, 100.0));
  // J1 wants 32: reservation at t=100 with 64-32=32 spare.
  const JobId j1 = sched_ptr->submit(make_spec(32, 100.0, 100.0));
  // J2 is small enough to fit in the spare even though it runs long.
  const JobId j2 = sched_ptr->submit(make_spec(16, 400.0, 400.0));
  w.engine.run();
  EXPECT_DOUBLE_EQ(sched_ptr->job(j0).wait_s(), 0.0);
  EXPECT_DOUBLE_EQ(sched_ptr->job(j2).wait_s(), 0.0);  // backfilled into spare
  EXPECT_TRUE(sched_ptr->job(j2).backfilled);
  EXPECT_NEAR(sched_ptr->job(j1).wait_s(), 100.0, 1.0);  // reservation honored
}

TEST(Scheduler, BackfillDisabledMeansStrictFcfs) {
  World w;
  SchedulerConfig cfg;
  cfg.enable_backfill = false;
  const auto sched_ptr = w.make(cfg);
  (void)sched_ptr->submit(make_spec(64, 100.0, 100.0));
  (void)sched_ptr->submit(make_spec(64, 100.0, 100.0));
  const JobId small = sched_ptr->submit(make_spec(16, 50.0, 50.0));
  w.engine.run();
  // Without EASY the small job waits for both big jobs ahead of it.
  EXPECT_NEAR(sched_ptr->job(small).wait_s(), 200.0, 1.0);
}

TEST(Scheduler, SubmitAtDelaysEnqueue) {
  World w;
  const auto sched_ptr = w.make(SchedulerConfig{});
  const JobId id = sched_ptr->submit_at(500.0, make_spec(16, 100.0));
  EXPECT_EQ(sched_ptr->queue_length(), 0u);
  w.engine.run();
  EXPECT_DOUBLE_EQ(sched_ptr->job(id).submit_s, 500.0);
  EXPECT_DOUBLE_EQ(sched_ptr->job(id).wait_s(), 0.0);
}

TEST(Scheduler, MakespanTracksIncrementalEndpoints) {
  World w;
  const auto sched_ptr = w.make(SchedulerConfig{});
  EXPECT_DOUBLE_EQ(sched_ptr->makespan(), 0.0);  // nothing submitted
  const JobId a = sched_ptr->submit(make_spec(16, 100.0));
  EXPECT_DOUBLE_EQ(sched_ptr->makespan(), 0.0);  // nothing completed yet
  w.engine.run();
  EXPECT_NEAR(sched_ptr->makespan(), 100.0, 0.5);
  // A later out-of-order wave must stretch only the right endpoint: first
  // submit stays t=0 even though this submission happens at t=500.
  const JobId b = sched_ptr->submit_at(500.0, make_spec(16, 100.0));
  w.engine.run();
  EXPECT_NEAR(sched_ptr->makespan(), 600.0, 0.5);
  EXPECT_EQ(sched_ptr->job(a).state, JobState::Completed);
  EXPECT_EQ(sched_ptr->job(b).state, JobState::Completed);
}

TEST(Scheduler, MakespanAnchorsAtFirstDeferredSubmission) {
  World w;
  const auto sched_ptr = w.make(SchedulerConfig{});
  // Only deferred submissions: the left endpoint is the deferred submit
  // time (t=500), not the wall-clock time of the submit_at call (t=0).
  (void)sched_ptr->submit_at(500.0, make_spec(16, 100.0));
  w.engine.run();
  EXPECT_NEAR(sched_ptr->makespan(), 100.0, 0.5);
}

TEST(Scheduler, HooksFireOnStartAndComplete) {
  World w;
  const auto sched_ptr = w.make(SchedulerConfig{});
  int starts = 0, completes = 0;
  sched_ptr->on_start([&](const Job& job) {
    ++starts;
    EXPECT_EQ(job.state, JobState::Running);
    EXPECT_FALSE(job.nodes.empty());
  });
  sched_ptr->on_complete([&](const Job& job) {
    ++completes;
    EXPECT_EQ(job.state, JobState::Completed);
    EXPECT_GT(job.record.duration_s, 0.0);
  });
  sched_ptr->submit(make_spec(16, 50.0));
  sched_ptr->submit(make_spec(16, 50.0));
  w.engine.run();
  EXPECT_EQ(starts, 2);
  EXPECT_EQ(completes, 2);
}

SchedulerConfig rush_config() {
  SchedulerConfig cfg;
  cfg.rush_enabled = true;
  cfg.min_reconsider_interval_s = 1.0;  // re-evaluate on nearly every pass
  cfg.retry_period_s = 10.0;
  return cfg;
}

TEST(Scheduler, RushDelaysPredictedVariation) {
  World w;
  // Variation until t=100, calm afterwards.
  ScriptedOracle oracle([&w](const Job&) {
    return w.engine.now() < 100.0 ? VariabilityPrediction::Variation
                                  : VariabilityPrediction::NoVariation;
  });
  const auto sched_ptr = w.make(rush_config(), &oracle);
  const JobId id = sched_ptr->submit(make_spec(16, 50.0));
  w.engine.run();
  const Job& job = sched_ptr->job(id);
  EXPECT_EQ(job.state, JobState::Completed);
  EXPECT_GE(job.start_s, 100.0);   // waited out the congestion
  EXPECT_LE(job.start_s, 130.0);   // but launched soon after (retry timer)
  EXPECT_GT(job.skip_count, 0);
  EXPECT_EQ(sched_ptr->total_skips(), static_cast<std::uint64_t>(job.skip_count));
}

TEST(Scheduler, SkipThresholdBoundsStarvation) {
  World w;
  ScriptedOracle oracle([](const Job&) { return VariabilityPrediction::Variation; });
  SchedulerConfig cfg = rush_config();
  const auto sched_ptr = w.make(cfg, &oracle);
  JobSpec spec = make_spec(16, 50.0);
  spec.skip_threshold = 4;
  const JobId id = sched_ptr->submit(spec);
  w.engine.run();
  const Job& job = sched_ptr->job(id);
  EXPECT_EQ(job.state, JobState::Completed);  // ran despite hostile oracle
  EXPECT_EQ(job.skip_count, 4);
}

TEST(Scheduler, LittleVariationDelaysOnlyWhenConfigured) {
  for (const bool delay_little : {false, true}) {
    World w;
    ScriptedOracle oracle([&w](const Job&) {
      return w.engine.now() < 50.0 ? VariabilityPrediction::LittleVariation
                                   : VariabilityPrediction::NoVariation;
    });
    SchedulerConfig cfg = rush_config();
    cfg.delay_on_little_variation = delay_little;
    const auto sched_ptr = w.make(cfg, &oracle);
    const JobId id = sched_ptr->submit(make_spec(16, 20.0));
    w.engine.run();
    if (delay_little) {
      EXPECT_GE(sched_ptr->job(id).start_s, 50.0);
    } else {
      EXPECT_DOUBLE_EQ(sched_ptr->job(id).start_s, 0.0);
    }
  }
}

TEST(Scheduler, ReconsiderIntervalLimitsOracleCalls) {
  World w;
  ScriptedOracle oracle([&w](const Job&) {
    return w.engine.now() < 100.0 ? VariabilityPrediction::Variation
                                  : VariabilityPrediction::NoVariation;
  });
  SchedulerConfig cfg = rush_config();
  cfg.min_reconsider_interval_s = 40.0;
  cfg.retry_period_s = 5.0;  // frequent passes, few evaluations
  const auto sched_ptr = w.make(cfg, &oracle);
  const JobId id = sched_ptr->submit(make_spec(16, 50.0));
  w.engine.run();
  EXPECT_EQ(sched_ptr->job(id).state, JobState::Completed);
  // Evaluations: t=0, ~40, ~80, ~120 -> roughly 4, far below passes run.
  EXPECT_LE(oracle.calls(), 6);
  EXPECT_LE(sched_ptr->job(id).skip_count, 4);
}

TEST(Scheduler, SkipPlacementControlsQueueOrder) {
  for (const auto placement : {SkipPlacement::Front, SkipPlacement::AfterFront}) {
    World w;
    // Keep 48 nodes busy so only 16 are free.
    ScriptedOracle oracle([](const Job& job) {
      // Only the 16-node job (j1) is predicted to vary.
      return job.spec.num_nodes == 16 ? VariabilityPrediction::Variation
                                      : VariabilityPrediction::NoVariation;
    });
    SchedulerConfig cfg = rush_config();
    cfg.skip_placement = placement;
    const auto sched_ptr = w.make(cfg, &oracle);
    (void)sched_ptr->submit(make_spec(48, 500.0, 500.0));  // occupies the machine
    const JobId j1 = sched_ptr->submit(make_spec(16, 50.0));   // delayed by oracle
    const JobId j2 = sched_ptr->submit(make_spec(32, 50.0));   // cannot fit now
    const auto queue = sched_ptr->queued_jobs();
    ASSERT_EQ(queue.size(), 2u);
    if (placement == SkipPlacement::Front) {
      EXPECT_EQ(queue[0], j1);  // "remains at the top"
      EXPECT_EQ(queue[1], j2);
    } else {
      EXPECT_EQ(queue[0], j2);  // "push after front"
      EXPECT_EQ(queue[1], j1);
    }
  }
}

TEST(Scheduler, ManyDelayedJobsAllCompleteEventually) {
  World w;
  ScriptedOracle oracle([&w](const Job&) {
    return w.engine.now() < 300.0 ? VariabilityPrediction::Variation
                                  : VariabilityPrediction::NoVariation;
  });
  const auto sched_ptr = w.make(rush_config(), &oracle);
  std::vector<JobId> ids;
  for (int i = 0; i < 12; ++i) ids.push_back(sched_ptr->submit(make_spec(16, 60.0)));
  w.engine.run();
  for (JobId id : ids) {
    EXPECT_EQ(sched_ptr->job(id).state, JobState::Completed);
    EXPECT_LE(sched_ptr->job(id).skip_count, sched_ptr->job(id).spec.skip_threshold);
  }
}

TEST(Scheduler, AccountingAndAccessors) {
  World w;
  const auto sched_ptr = w.make(SchedulerConfig{});
  const JobId a = sched_ptr->submit(make_spec(16, 100.0));
  w.engine.run_until(500.0);
  const JobId b = sched_ptr->submit(make_spec(16, 100.0));
  w.engine.run();
  const auto all = sched_ptr->all_jobs();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0]->id, a);
  EXPECT_EQ(all[1]->id, b);
  const auto completed = sched_ptr->completed_jobs();
  ASSERT_EQ(completed.size(), 2u);
  // Makespan: first submit (t=0) to last end (~600).
  EXPECT_NEAR(sched_ptr->makespan(), 600.0, 1.0);
  EXPECT_GT(sched_ptr->passes_run(), 0u);
  EXPECT_THROW((void)sched_ptr->job(999), PreconditionError);
}

TEST(Scheduler, RejectsInvalidSubmissions) {
  World w;
  const auto sched_ptr = w.make(SchedulerConfig{});
  JobSpec too_big = make_spec(65, 100.0);
  EXPECT_THROW((void)sched_ptr->submit(too_big), PreconditionError);
  JobSpec no_estimate = make_spec(16, 100.0);
  no_estimate.walltime_estimate_s = 0.0;
  EXPECT_THROW((void)sched_ptr->submit(no_estimate), PreconditionError);
  JobSpec zero_nodes = make_spec(16, 100.0);
  zero_nodes.num_nodes = 0;
  EXPECT_THROW((void)sched_ptr->submit(zero_nodes), PreconditionError);
}

TEST(Scheduler, RushRequiresOracle) {
  World w;
  SchedulerConfig cfg;
  cfg.rush_enabled = true;
  EXPECT_THROW(w.make(cfg, nullptr), PreconditionError);
}

}  // namespace
}  // namespace rush::sched
