// Decision-identity differential suite: the incremental Scheduler versus
// the pinned ReferenceScheduler (sched/reference_scheduler.hpp).
//
// Every scenario builds two isolated worlds (own engine, allocator,
// execution model, oracle, fault injector, trace sink), generates one
// randomized workload from the scenario seed, feeds it verbatim to both
// schedulers, and requires the runs to match exactly: launch order, node
// assignments, backfill flags, completion order, skip/requeue totals,
// and the full trace byte stream. The matrix crosses seeds, EASY
// backfill on/off, RUSH off / Front / AfterFront skip placement, and
// fault plans (crash + drain + restore), so the indexed queue, the
// reservation timeline, the word-bitset allocator, and the
// AfterFront linear-fallback regime are all exercised differentially.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "faults/injector.hpp"
#include "obs/trace.hpp"
#include "sched/reference_scheduler.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"

namespace rush::sched {
namespace {

cluster::FatTreeConfig small_config() {
  cluster::FatTreeConfig cfg;
  cfg.pods = 1;
  cfg.edges_per_pod = 2;
  cfg.nodes_per_edge = 32;  // 64 nodes
  return cfg;
}

apps::AppProfile quiet_app(double runtime_s) {
  apps::AppProfile app;
  app.name = "quiet";
  app.base_runtime_s = runtime_s;
  app.compute_frac = 1.0;
  app.network_frac = 0.0;
  app.io_frac = 0.0;
  app.net_gbps_per_node = 0.0;
  app.io_gbps_per_node = 0.0;
  app.noise_sigma = 0.0;
  app.serial_fraction = 1.0;
  return app;
}

/// Deterministic oracle keyed on the job id only, so both worlds see the
/// same prediction stream without sharing state.
class IdHashOracle final : public VariabilityOracle {
 public:
  VariabilityPrediction predict(const Job& job, const cluster::NodeSet&) override {
    switch ((job.id * 2654435761ULL) % 5) {
      case 0:
        return VariabilityPrediction::Variation;
      case 1:
        return VariabilityPrediction::LittleVariation;
      default:
        return VariabilityPrediction::NoVariation;
    }
  }
};

struct Scenario {
  std::uint64_t seed = 1;
  bool backfill = true;
  bool rush = false;
  SkipPlacement placement = SkipPlacement::Front;
  bool faults = false;
};

struct Submission {
  sim::Time at = 0.0;
  JobSpec spec;
};

/// One workload per seed, identical for both schedulers: bursty submit
/// times (several jobs share a timestamp to exercise the id tie-break),
/// mixed widths, and walltime estimates looser than the runtimes.
std::vector<Submission> make_workload(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Submission> subs;
  sim::Time t = 0.0;
  for (int i = 0; i < 48; ++i) {
    if (rng.uniform() > 0.3) t += rng.uniform(1.0, 80.0);  // else: same-time burst
    Submission s;
    s.at = t;
    const double runtime = rng.uniform(40.0, 400.0);
    s.spec = JobSpec{};
    s.spec.app = quiet_app(runtime);
    s.spec.num_nodes = static_cast<int>(rng.uniform_int(1, 48));
    s.spec.walltime_estimate_s = runtime * rng.uniform(1.05, 1.6);
    subs.push_back(std::move(s));
  }
  return subs;
}

faults::FaultPlan make_fault_plan() {
  auto ev = [](faults::FaultKind kind, sim::Time at, cluster::NodeId node) {
    faults::FaultEvent e;
    e.kind = kind;
    e.at_s = at;
    e.node = node;
    return e;
  };
  faults::FaultPlan plan;
  plan.events = {
      ev(faults::FaultKind::NodeCrash, 250.0, 5),
      ev(faults::FaultKind::NodeDrain, 400.0, 17),
      ev(faults::FaultKind::NodeCrash, 650.0, 40),
      ev(faults::FaultKind::NodeRestore, 900.0, 5),
      ev(faults::FaultKind::NodeRestore, 1200.0, 40),
      ev(faults::FaultKind::NodeRestore, 1500.0, 17),
  };
  return plan;
}

/// Everything one run produced that the other run must reproduce.
struct RunResult {
  std::vector<std::string> launches;  // "id@t nodes=[...] bf=0/1" in launch order
  std::vector<JobId> completed;
  std::string trace_bytes;
  std::uint64_t total_skips = 0;
  std::uint64_t total_requeues = 0;
  double makespan = 0.0;
};

template <typename SchedulerT>
RunResult run_scenario(const Scenario& sc) {
  sim::Engine engine;
  cluster::FatTree tree(small_config());
  cluster::NetworkModel net(tree);
  cluster::LustreModel fs(1000.0);
  apps::ExecutionConfig exec_cfg;
  exec_cfg.os_noise = 0.0;
  apps::ExecutionModel exec(engine, net, fs, exec_cfg, Rng(sc.seed ^ 0xabcdULL));
  cluster::NodeAllocator allocator(tree.nodes_in_pod(0));

  std::ostringstream trace_sink;
  obs::EventTrace trace(trace_sink);

  std::unique_ptr<faults::FaultInjector> injector;
  if (sc.faults) {
    injector = std::make_unique<faults::FaultInjector>(engine, make_fault_plan());
    injector->set_obs(&trace, nullptr);
  }

  IdHashOracle oracle;
  SchedulerConfig cfg;
  cfg.enable_backfill = sc.backfill;
  cfg.rush_enabled = sc.rush;
  cfg.skip_placement = sc.placement;
  cfg.trace = &trace;
  cfg.faults = injector.get();

  SchedulerT sched(engine, allocator, exec, std::make_unique<FcfsPolicy>(),
                   std::make_unique<SjfPolicy>(), cfg, sc.rush ? &oracle : nullptr);

  RunResult out;
  sched.on_start([&](const Job& job) {
    std::string line = std::to_string(job.id) + "@" + std::to_string(job.start_s) +
                       " bf=" + (job.backfilled ? "1" : "0") + " nodes=";
    for (const auto n : job.nodes) line += std::to_string(n) + ",";
    out.launches.push_back(std::move(line));
  });
  sched.on_complete([&](const Job& job) { out.completed.push_back(job.id); });

  if (injector) injector->arm();
  for (const Submission& s : make_workload(sc.seed)) (void)sched.submit_at(s.at, s.spec);
  engine.run();

  trace.flush();
  out.trace_bytes = trace_sink.str();
  out.total_skips = sched.total_skips();
  out.total_requeues = sched.total_requeues();
  out.makespan = sched.makespan();
  EXPECT_TRUE(sched.idle());
  return out;
}

void expect_identical(const Scenario& sc) {
  SCOPED_TRACE("seed=" + std::to_string(sc.seed) + " backfill=" + std::to_string(sc.backfill) +
               " rush=" + std::to_string(sc.rush) +
               " afterfront=" + std::to_string(sc.placement == SkipPlacement::AfterFront) +
               " faults=" + std::to_string(sc.faults));
  const RunResult opt = run_scenario<Scheduler>(sc);
  const RunResult ref = run_scenario<ReferenceScheduler>(sc);
  EXPECT_EQ(opt.launches, ref.launches);
  EXPECT_EQ(opt.completed, ref.completed);
  EXPECT_EQ(opt.trace_bytes, ref.trace_bytes);
  EXPECT_EQ(opt.total_skips, ref.total_skips);
  EXPECT_EQ(opt.total_requeues, ref.total_requeues);
  EXPECT_DOUBLE_EQ(opt.makespan, ref.makespan);
  // A degenerate scenario that never queued anything would vacuously
  // pass; make sure the workload actually exercised the machinery.
  EXPECT_FALSE(opt.launches.empty());
  EXPECT_FALSE(opt.trace_bytes.empty());
}

TEST(SchedulerDifferential, MatrixOfSeedsFaultsBackfillAndSkipPlacement) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 1234567ULL}) {
    for (const bool backfill : {true, false}) {
      for (const bool faults : {false, true}) {
        Scenario off;
        off.seed = seed;
        off.backfill = backfill;
        off.faults = faults;
        expect_identical(off);

        Scenario front = off;
        front.rush = true;
        front.placement = SkipPlacement::Front;
        expect_identical(front);

        Scenario after = off;
        after.rush = true;
        after.placement = SkipPlacement::AfterFront;
        expect_identical(after);
      }
    }
  }
}

TEST(SchedulerDifferential, RequeuedJobsKeepIdentityUnderRepeatedCrashes) {
  // Hammer the fault path: crash the same nodes twice so requeued jobs
  // relaunch (exercising timeline erase/insert of re-placed jobs).
  Scenario sc;
  sc.seed = 99;
  sc.faults = true;
  sc.rush = true;
  sc.placement = SkipPlacement::AfterFront;
  expect_identical(sc);
}

}  // namespace
}  // namespace rush::sched
