#include "sched/policy.hpp"

#include <gtest/gtest.h>

#include "common/audit.hpp"
#include "common/error.hpp"
#include "sched/oracle.hpp"

namespace rush::sched {
namespace {

Job make_job(JobId id, double submit, double walltime) {
  Job j;
  j.id = id;
  j.submit_s = submit;
  j.spec.walltime_estimate_s = walltime;
  return j;
}

TEST(Policy, FcfsOrdersBySubmitTime) {
  FcfsPolicy fcfs;
  const Job early = make_job(2, 10.0, 100.0);
  const Job late = make_job(1, 20.0, 10.0);
  EXPECT_TRUE(fcfs.before(early, late));
  EXPECT_FALSE(fcfs.before(late, early));
  EXPECT_EQ(fcfs.name(), "fcfs");
}

TEST(Policy, FcfsBreaksTiesById) {
  FcfsPolicy fcfs;
  const Job a = make_job(1, 10.0, 100.0);
  const Job b = make_job(2, 10.0, 100.0);
  EXPECT_TRUE(fcfs.before(a, b));
  EXPECT_FALSE(fcfs.before(b, a));
}

TEST(Policy, SjfOrdersByWalltimeEstimate) {
  SjfPolicy sjf;
  const Job shorter = make_job(5, 50.0, 60.0);
  const Job longer = make_job(1, 1.0, 600.0);
  EXPECT_TRUE(sjf.before(shorter, longer));
  EXPECT_FALSE(sjf.before(longer, shorter));
  EXPECT_EQ(sjf.name(), "sjf");
}

TEST(Policy, SjfBreaksTiesById) {
  SjfPolicy sjf;
  const Job a = make_job(3, 0.0, 60.0);
  const Job b = make_job(7, 0.0, 60.0);
  EXPECT_TRUE(sjf.before(a, b));
}

TEST(Policy, OrderingsAreIrreflexive) {
  const Job a = make_job(1, 10.0, 100.0);
  EXPECT_FALSE(FcfsPolicy{}.before(a, a));
  EXPECT_FALSE(SjfPolicy{}.before(a, a));
}

TEST(Policy, FactoryByName) {
  EXPECT_EQ(make_policy("fcfs")->name(), "fcfs");
  EXPECT_EQ(make_policy("sjf")->name(), "sjf");
  EXPECT_THROW((void)make_policy("priority"), ParseError);
}

// --- Ordering-contract audit (audit_policy_order) -----------------------
//
// The incremental scheduler's binary-searched queue is only correct when
// before() is a strict weak ordering whose ties are broken by job id (a
// total order across distinct jobs; see the contract in policy.hpp). The
// audit function is compiled in every build so it can be tested directly;
// the scheduler itself invokes it through RUSH_AUDIT_HOOK on each queue
// insert in audit builds.

/// Deliberately broken: orders by width only, no id tie-break. Two
/// distinct equal-width jobs are mutually unordered, so upper_bound and
/// find_if may disagree on their relative position.
class WidthOnlyPolicy final : public QueuePolicyBase {
 public:
  [[nodiscard]] bool before(const Job& a, const Job& b) const override {
    return a.spec.num_nodes < b.spec.num_nodes;
  }
  [[nodiscard]] std::string name() const override { return "width-only"; }
};

/// Deliberately broken differently: non-strict (<=), so before(a, a) is
/// true and both orientations hold for equal keys.
class NonStrictPolicy final : public QueuePolicyBase {
 public:
  [[nodiscard]] bool before(const Job& a, const Job& b) const override {
    return a.submit_s <= b.submit_s;
  }
  [[nodiscard]] std::string name() const override { return "non-strict"; }
};

TEST(PolicyAudit, WellFormedPoliciesPassIncludingTies) {
  const Job a = make_job(1, 10.0, 100.0);
  const Job tie = make_job(2, 10.0, 100.0);  // equal keys, distinct ids
  const Job b = make_job(3, 20.0, 50.0);
  const FcfsPolicy fcfs;
  const SjfPolicy sjf;
  for (const QueuePolicyBase* p : {static_cast<const QueuePolicyBase*>(&fcfs),
                                   static_cast<const QueuePolicyBase*>(&sjf)}) {
    EXPECT_NO_THROW(audit_policy_order(*p, a, tie));
    EXPECT_NO_THROW(audit_policy_order(*p, tie, a));
    EXPECT_NO_THROW(audit_policy_order(*p, a, b));
    EXPECT_NO_THROW(audit_policy_order(*p, a, a));  // same job: no tie-break needed
  }
}

TEST(PolicyAudit, MissingIdTieBreakIsRejected) {
  WidthOnlyPolicy p;
  Job a = make_job(1, 10.0, 100.0);
  Job b = make_job(2, 20.0, 50.0);
  a.spec.num_nodes = 4;
  b.spec.num_nodes = 4;  // equal width, distinct ids: unordered under p
  EXPECT_THROW(audit_policy_order(p, a, b), AuditError);
  b.spec.num_nodes = 8;  // ordered pair: fine even without a tie-break
  EXPECT_NO_THROW(audit_policy_order(p, a, b));
}

TEST(PolicyAudit, NonStrictComparatorIsRejected) {
  NonStrictPolicy p;
  const Job a = make_job(1, 10.0, 100.0);
  const Job b = make_job(2, 10.0, 100.0);
  // Irreflexivity fails first: before(a, a) is true under <=.
  EXPECT_THROW(audit_policy_order(p, a, a), AuditError);
  // Asymmetry fails for the distinct pair: both orientations hold.
  EXPECT_THROW(audit_policy_order(p, a, b), AuditError);
}

TEST(Policy, PredictionNames) {
  EXPECT_STREQ(prediction_name(VariabilityPrediction::NoVariation), "no-variation");
  EXPECT_STREQ(prediction_name(VariabilityPrediction::LittleVariation), "little-variation");
  EXPECT_STREQ(prediction_name(VariabilityPrediction::Variation), "variation");
}

}  // namespace
}  // namespace rush::sched
