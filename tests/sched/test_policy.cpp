#include "sched/policy.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sched/oracle.hpp"

namespace rush::sched {
namespace {

Job make_job(JobId id, double submit, double walltime) {
  Job j;
  j.id = id;
  j.submit_s = submit;
  j.spec.walltime_estimate_s = walltime;
  return j;
}

TEST(Policy, FcfsOrdersBySubmitTime) {
  FcfsPolicy fcfs;
  const Job early = make_job(2, 10.0, 100.0);
  const Job late = make_job(1, 20.0, 10.0);
  EXPECT_TRUE(fcfs.before(early, late));
  EXPECT_FALSE(fcfs.before(late, early));
  EXPECT_EQ(fcfs.name(), "fcfs");
}

TEST(Policy, FcfsBreaksTiesById) {
  FcfsPolicy fcfs;
  const Job a = make_job(1, 10.0, 100.0);
  const Job b = make_job(2, 10.0, 100.0);
  EXPECT_TRUE(fcfs.before(a, b));
  EXPECT_FALSE(fcfs.before(b, a));
}

TEST(Policy, SjfOrdersByWalltimeEstimate) {
  SjfPolicy sjf;
  const Job shorter = make_job(5, 50.0, 60.0);
  const Job longer = make_job(1, 1.0, 600.0);
  EXPECT_TRUE(sjf.before(shorter, longer));
  EXPECT_FALSE(sjf.before(longer, shorter));
  EXPECT_EQ(sjf.name(), "sjf");
}

TEST(Policy, SjfBreaksTiesById) {
  SjfPolicy sjf;
  const Job a = make_job(3, 0.0, 60.0);
  const Job b = make_job(7, 0.0, 60.0);
  EXPECT_TRUE(sjf.before(a, b));
}

TEST(Policy, OrderingsAreIrreflexive) {
  const Job a = make_job(1, 10.0, 100.0);
  EXPECT_FALSE(FcfsPolicy{}.before(a, a));
  EXPECT_FALSE(SjfPolicy{}.before(a, a));
}

TEST(Policy, FactoryByName) {
  EXPECT_EQ(make_policy("fcfs")->name(), "fcfs");
  EXPECT_EQ(make_policy("sjf")->name(), "sjf");
  EXPECT_THROW((void)make_policy("priority"), ParseError);
}

TEST(Policy, PredictionNames) {
  EXPECT_STREQ(prediction_name(VariabilityPrediction::NoVariation), "no-variation");
  EXPECT_STREQ(prediction_name(VariabilityPrediction::LittleVariation), "little-variation");
  EXPECT_STREQ(prediction_name(VariabilityPrediction::Variation), "variation");
}

}  // namespace
}  // namespace rush::sched
