// End-to-end integration: collect a miniature corpus in-situ, train the
// pipeline, and run a miniature paired experiment — the full Fig. 2
// pipeline at toy scale.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/collector.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/rush_oracle.hpp"

namespace rush::core {
namespace {

CollectorConfig tiny_campaign(std::uint64_t seed) {
  CollectorConfig cfg;
  cfg.days = 2;
  cfg.sessions_per_day = 1;
  cfg.jobs_per_session = 28;
  cfg.submit_window_s = 600.0;
  cfg.seed = seed;
  return cfg;
}

TEST(EndToEnd, CollectTrainSchedule) {
  LongitudinalCollector collector(tiny_campaign(1), single_pod_config());
  const Corpus corpus = collector.collect();
  ASSERT_EQ(corpus.size(), 56u);  // 2 days x 28 jobs
  EXPECT_EQ(corpus.app_names().size(), 7u);

  // Features are populated (the counter window was live at every launch).
  std::size_t nonzero_rows = 0;
  for (const auto& s : corpus.samples()) {
    double total = 0.0;
    for (double v : s.features_all) total += std::abs(v);
    if (total > 0.0) ++nonzero_rows;
  }
  EXPECT_EQ(nonzero_rows, corpus.size());

  const Labeler labeler(corpus);
  TrainerConfig tc;
  const TrainedPredictor predictor = PredictorTrainer(tc).train(corpus, labeler);
  EXPECT_TRUE(predictor.ready());

  ExperimentConfig config;
  config.trials_per_policy = 1;
  ExperimentRunner runner(corpus, config);
  ExperimentSpec spec = experiment_spec(ExperimentId::ADAA);
  spec.num_jobs = 28;
  const TrialResult base = runner.run_trial(spec, false, 5, nullptr);
  const TrialResult rush = runner.run_trial(spec, true, 5, &predictor);
  EXPECT_EQ(base.jobs.size(), 28u);
  EXPECT_EQ(rush.jobs.size(), 28u);
  EXPECT_GT(rush.oracle_evaluations, 0u);

  // Reporting helpers operate on the results.
  (void)mean_variation_runs({base}, runner.labeler());
  (void)runtime_summaries({rush});
  EXPECT_GT(mean_makespan({base}), 0.0);
}

TEST(EndToEnd, CollectionIsDeterministic) {
  LongitudinalCollector a(tiny_campaign(7), single_pod_config());
  LongitudinalCollector b(tiny_campaign(7), single_pod_config());
  const Corpus ca = a.collect();
  const Corpus cb = b.collect();
  ASSERT_EQ(ca.size(), cb.size());
  for (std::size_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca.samples()[i].app, cb.samples()[i].app);
    EXPECT_DOUBLE_EQ(ca.samples()[i].runtime_s, cb.samples()[i].runtime_s);
    EXPECT_EQ(ca.samples()[i].features_job, cb.samples()[i].features_job);
  }
}

TEST(EndToEnd, CorpusCacheRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "rush_test_corpus_cache.csv";
  std::filesystem::remove(path);
  LongitudinalCollector collector(tiny_campaign(3), single_pod_config());
  const Corpus fresh = collector.collect_or_load(path);
  ASSERT_TRUE(std::filesystem::exists(path));
  // Second call loads the cache (same content, no recollection).
  LongitudinalCollector collector2(tiny_campaign(4), single_pod_config());
  const Corpus cached = collector2.collect_or_load(path);
  ASSERT_EQ(cached.size(), fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(cached.samples()[i].app, fresh.samples()[i].app);
    EXPECT_NEAR(cached.samples()[i].runtime_s, fresh.samples()[i].runtime_s, 1e-6);
  }
  // Corrupt cache is ignored and rebuilt.
  std::ofstream(path) << "garbage";
  const Corpus rebuilt = collector2.collect_or_load(path);
  EXPECT_EQ(rebuilt.size(), 56u);
  std::filesystem::remove(path);
}

TEST(EndToEnd, StormInflatesCollectedRuntimes) {
  CollectorConfig calm_cfg = tiny_campaign(11);
  calm_cfg.storm_days = 0.0;
  CollectorConfig stormy_cfg = tiny_campaign(11);
  stormy_cfg.storm_days = 2.0;
  stormy_cfg.storm_at_fraction = 0.0;  // storm covers the whole campaign
  stormy_cfg.storm_net_intensity = 0.6;
  stormy_cfg.storm_io_intensity = 0.6;
  LongitudinalCollector calm(calm_cfg, single_pod_config());
  LongitudinalCollector stormy(stormy_cfg, single_pod_config());
  const Corpus corpus_calm = calm.collect();
  const Corpus corpus_stormy = stormy.collect();
  double calm_mean = 0.0, stormy_mean = 0.0;
  for (const auto& s : corpus_calm.samples()) calm_mean += s.runtime_s;
  for (const auto& s : corpus_stormy.samples()) stormy_mean += s.runtime_s;
  calm_mean /= static_cast<double>(corpus_calm.size());
  stormy_mean /= static_cast<double>(corpus_stormy.size());
  EXPECT_GT(stormy_mean, calm_mean * 1.05);
}

}  // namespace
}  // namespace rush::core
