#include "cluster/topology.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace rush::cluster {
namespace {

FatTree small_tree() {
  FatTreeConfig cfg;
  cfg.pods = 2;
  cfg.edges_per_pod = 4;
  cfg.nodes_per_edge = 8;
  return FatTree(cfg);
}

TEST(Topology, Counts) {
  const FatTree tree = small_tree();
  EXPECT_EQ(tree.num_nodes(), 64);
  EXPECT_EQ(tree.num_edges(), 8);
  EXPECT_EQ(tree.num_pods(), 2);
  EXPECT_EQ(tree.num_links(), 64 + 8 + 2);
}

TEST(Topology, DefaultConfigIsQuartzLike) {
  const FatTree tree{FatTreeConfig{}};
  EXPECT_EQ(tree.num_nodes(), 6 * 16 * 32);
  EXPECT_EQ(tree.config().total_nodes(), tree.num_nodes());
}

TEST(Topology, EdgeAndPodMapping) {
  const FatTree tree = small_tree();
  EXPECT_EQ(tree.edge_of(0), 0);
  EXPECT_EQ(tree.edge_of(7), 0);
  EXPECT_EQ(tree.edge_of(8), 1);
  EXPECT_EQ(tree.edge_of(63), 7);
  EXPECT_EQ(tree.pod_of(0), 0);
  EXPECT_EQ(tree.pod_of(31), 0);
  EXPECT_EQ(tree.pod_of(32), 1);
  EXPECT_EQ(tree.pod_of(63), 1);
}

TEST(Topology, NodesInPodAndEdge) {
  const FatTree tree = small_tree();
  const NodeSet pod1 = tree.nodes_in_pod(1);
  ASSERT_EQ(pod1.size(), 32u);
  EXPECT_EQ(pod1.front(), 32);
  EXPECT_EQ(pod1.back(), 63);
  const NodeSet edge3 = tree.nodes_in_edge(3);
  ASSERT_EQ(edge3.size(), 8u);
  EXPECT_EQ(edge3.front(), 24);
  EXPECT_EQ(edge3.back(), 31);
}

TEST(Topology, LinkIdsArePartitionedByKind) {
  const FatTree tree = small_tree();
  EXPECT_EQ(tree.link_kind(tree.node_link(5)), LinkKind::NodeLink);
  EXPECT_EQ(tree.link_kind(tree.edge_uplink(2)), LinkKind::EdgeUplink);
  EXPECT_EQ(tree.link_kind(tree.pod_uplink(1)), LinkKind::PodUplink);
  // Distinctness across kinds.
  EXPECT_NE(tree.node_link(63), tree.edge_uplink(0));
  EXPECT_NE(tree.edge_uplink(7), tree.pod_uplink(0));
}

TEST(Topology, LinkCapacitiesByKind) {
  const FatTree tree = small_tree();
  const auto& cfg = tree.config();
  EXPECT_DOUBLE_EQ(tree.link_capacity_gbps(tree.node_link(0)), cfg.node_link_gbps);
  EXPECT_DOUBLE_EQ(tree.link_capacity_gbps(tree.edge_uplink(0)), cfg.edge_uplink_gbps);
  EXPECT_DOUBLE_EQ(tree.link_capacity_gbps(tree.pod_uplink(0)), cfg.pod_uplink_gbps);
}

TEST(Topology, LinkNames) {
  const FatTree tree = small_tree();
  EXPECT_EQ(tree.link_name(tree.node_link(3)), "node0003");
  EXPECT_EQ(tree.link_name(tree.edge_uplink(2)), "edge002-up");
  EXPECT_EQ(tree.link_name(tree.pod_uplink(1)), "pod01-up");
}

TEST(Topology, Hostname) {
  const FatTree tree = small_tree();
  EXPECT_EQ(tree.hostname(0), "quartz0000");
  EXPECT_EQ(tree.hostname(63), "quartz0063");
  EXPECT_THROW((void)tree.hostname(64), PreconditionError);
}

TEST(Topology, BoundsChecking) {
  const FatTree tree = small_tree();
  EXPECT_THROW((void)tree.edge_of(-1), PreconditionError);
  EXPECT_THROW((void)tree.edge_of(64), PreconditionError);
  EXPECT_THROW((void)tree.pod_uplink(2), PreconditionError);
  EXPECT_THROW((void)tree.link_kind(tree.num_links()), PreconditionError);
}

TEST(Topology, RejectsBadConfig) {
  FatTreeConfig cfg;
  cfg.pods = 0;
  EXPECT_THROW(FatTree{cfg}, PreconditionError);
  cfg = FatTreeConfig{};
  cfg.edge_uplink_gbps = 0.0;
  EXPECT_THROW(FatTree{cfg}, PreconditionError);
}

TEST(Topology, ValidNodeSet) {
  const FatTree tree = small_tree();
  EXPECT_TRUE(valid_node_set(tree, {0, 1, 5}));
  EXPECT_FALSE(valid_node_set(tree, {}));            // empty
  EXPECT_FALSE(valid_node_set(tree, {1, 1}));        // duplicate
  EXPECT_FALSE(valid_node_set(tree, {2, 1}));        // unsorted
  EXPECT_FALSE(valid_node_set(tree, {0, 64}));       // out of range
  EXPECT_FALSE(valid_node_set(tree, {-1, 3}));       // negative
}

}  // namespace
}  // namespace rush::cluster
