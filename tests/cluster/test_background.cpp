#include "cluster/background.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/engine.hpp"

namespace rush::cluster {
namespace {

FatTreeConfig small_config() {
  FatTreeConfig cfg;
  cfg.pods = 2;
  cfg.edges_per_pod = 4;
  cfg.nodes_per_edge = 8;
  return cfg;
}

struct World {
  World() : tree(small_config()), net(tree), fs(100.0) {}
  sim::Engine engine;
  FatTree tree;
  NetworkModel net;
  LustreModel fs;
};

TEST(Background, UpdateSetsAmbientLoads) {
  World w;
  BackgroundLoad bg(w.engine, w.net, w.fs, BackgroundConfig{}, Rng(1));
  bg.update();
  // Some ambient load appears on edge uplinks and on the filesystem.
  double total = 0.0;
  for (int e = 0; e < w.tree.num_edges(); ++e)
    total += w.net.link_load_gbps(w.tree.edge_uplink(e));
  EXPECT_GT(total, 0.0);
  EXPECT_GT(w.fs.total_demand_gbps(), 0.0);
}

TEST(Background, LevelsStayInRange) {
  World w;
  BackgroundLoad bg(w.engine, w.net, w.fs, BackgroundConfig{}, Rng(2));
  bg.start();
  w.engine.run_until(6.0 * 3600.0);
  for (int pod = 0; pod < w.tree.num_pods(); ++pod) {
    const double level = bg.current_net_level(pod);
    EXPECT_GE(level, 0.0);
    EXPECT_LE(level, 2.0);
  }
  EXPECT_GE(bg.current_io_level(), 0.0);
  EXPECT_LE(bg.current_io_level(), 2.5);
}

TEST(Background, PeriodicUpdatesRun) {
  World w;
  BackgroundConfig cfg;
  cfg.update_period_s = 60.0;
  BackgroundLoad bg(w.engine, w.net, w.fs, cfg, Rng(3));
  bg.start();
  const auto before = w.engine.events_executed();
  w.engine.run_until(600.0);
  EXPECT_GE(w.engine.events_executed() - before, 10u);
  bg.stop();
  const auto after_stop = w.engine.events_executed();
  w.engine.run_until(1200.0);
  EXPECT_EQ(w.engine.events_executed(), after_stop);
}

TEST(Background, StormRaisesLevels) {
  World w1, w2;
  const std::uint64_t seed = 7;
  BackgroundLoad calm(w1.engine, w1.net, w1.fs, BackgroundConfig{}, Rng(seed));
  BackgroundLoad stormy(w2.engine, w2.net, w2.fs, BackgroundConfig{}, Rng(seed));
  stormy.add_storm(Storm{0.0, 7200.0, 0.5, 0.6});
  calm.start();
  stormy.start();
  w1.engine.run_until(3600.0);
  w2.engine.run_until(3600.0);
  // Identical RNG streams, so the storm boost is the exact difference.
  EXPECT_NEAR(stormy.current_net_level(0) - calm.current_net_level(0), 0.5, 1e-9);
  EXPECT_NEAR(stormy.current_io_level() - calm.current_io_level(), 0.6, 1e-9);
}

TEST(Background, StormEndsCleanly) {
  World w;
  BackgroundLoad bg(w.engine, w.net, w.fs, BackgroundConfig{}, Rng(11));
  bg.add_storm(Storm{100.0, 200.0, 1.0, 0.0});
  bg.start();
  w.engine.run_until(150.0);
  const double during = bg.current_net_level(0);
  w.engine.run_until(300.0);
  const double after = bg.current_net_level(0);
  EXPECT_GT(during, after + 0.5);
}

TEST(Background, DeterministicAcrossRuns) {
  World w1, w2;
  BackgroundLoad a(w1.engine, w1.net, w1.fs, BackgroundConfig{}, Rng(99));
  BackgroundLoad b(w2.engine, w2.net, w2.fs, BackgroundConfig{}, Rng(99));
  a.start();
  b.start();
  w1.engine.run_until(3600.0);
  w2.engine.run_until(3600.0);
  for (int pod = 0; pod < w1.tree.num_pods(); ++pod)
    EXPECT_DOUBLE_EQ(a.current_net_level(pod), b.current_net_level(pod));
  EXPECT_DOUBLE_EQ(a.current_io_level(), b.current_io_level());
}

TEST(Background, RejectsBadStormAndConfig) {
  World w;
  BackgroundLoad bg(w.engine, w.net, w.fs, BackgroundConfig{}, Rng(1));
  EXPECT_THROW(bg.add_storm(Storm{10.0, 10.0, 1.0, 1.0}), PreconditionError);
  BackgroundConfig bad;
  bad.update_period_s = 0.0;
  EXPECT_THROW(BackgroundLoad(w.engine, w.net, w.fs, bad, Rng(1)), PreconditionError);
}

}  // namespace
}  // namespace rush::cluster
