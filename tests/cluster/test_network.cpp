#include "cluster/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "cluster/congestion.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace rush::cluster {
namespace {

FatTreeConfig small_config() {
  FatTreeConfig cfg;
  cfg.pods = 2;
  cfg.edges_per_pod = 4;
  cfg.nodes_per_edge = 8;
  cfg.node_link_gbps = 10.0;
  cfg.edge_uplink_gbps = 20.0;
  cfg.pod_uplink_gbps = 80.0;
  return cfg;
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : tree_(small_config()), net_(tree_) {}
  FatTree tree_;
  NetworkModel net_;
};

TEST(CongestionCurve, ShapeAndMonotonicity) {
  EXPECT_DOUBLE_EQ(congestion_slowdown(0.0), 1.0);
  EXPECT_NEAR(congestion_slowdown(0.3), 1.0, 0.01);   // healthy region
  EXPECT_NEAR(congestion_slowdown(0.7), 1.2, 0.05);   // knee
  EXPECT_NEAR(congestion_slowdown(1.0), 1.95, 0.01);  // saturation
  EXPECT_GT(congestion_slowdown(1.5), 2.5);           // overload
  double prev = 0.0;
  for (double u = 0.0; u <= 3.0; u += 0.01) {
    const double s = congestion_slowdown(u);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

TEST_F(NetworkTest, NoTrafficMeansNoLoad) {
  for (LinkId l = 0; l < tree_.num_links(); ++l) EXPECT_DOUBLE_EQ(net_.link_load_gbps(l), 0.0);
}

TEST_F(NetworkTest, SingleNodeSourceGeneratesNoTraffic) {
  net_.add_source(1, {0}, 5.0, TrafficPattern::AllToAll);
  EXPECT_DOUBLE_EQ(net_.link_load_gbps(tree_.node_link(0)), 0.0);
  EXPECT_DOUBLE_EQ(net_.slowdown(1), 1.0);
}

TEST_F(NetworkTest, AllToAllWithinOneEdgeStaysLocal) {
  // Nodes 0..3 all attach to edge 0: their all-to-all never crosses the
  // edge uplink.
  net_.add_source(1, {0, 1, 2, 3}, 2.0, TrafficPattern::AllToAll);
  EXPECT_DOUBLE_EQ(net_.link_load_gbps(tree_.node_link(0)), 2.0);
  EXPECT_DOUBLE_EQ(net_.link_load_gbps(tree_.edge_uplink(0)), 0.0);
  EXPECT_DOUBLE_EQ(net_.link_load_gbps(tree_.pod_uplink(0)), 0.0);
}

TEST_F(NetworkTest, AllToAllAcrossEdgesLoadsUplinks) {
  // 4 nodes on edge 0, 4 on edge 1: half of each node's traffic leaves
  // its edge -> per-edge uplink load = 4 * r * (4/7).
  net_.add_source(1, {0, 1, 2, 3, 8, 9, 10, 11}, 2.0, TrafficPattern::AllToAll);
  const double expected = 4.0 * 2.0 * 4.0 / 7.0;
  EXPECT_NEAR(net_.link_load_gbps(tree_.edge_uplink(0)), expected, 1e-9);
  EXPECT_NEAR(net_.link_load_gbps(tree_.edge_uplink(1)), expected, 1e-9);
  EXPECT_DOUBLE_EQ(net_.link_load_gbps(tree_.pod_uplink(0)), 0.0);  // same pod
}

TEST_F(NetworkTest, AllToAllAcrossPodsLoadsPodUplinks) {
  // One node per pod: everything crosses both pod uplinks.
  net_.add_source(1, {0, 32}, 3.0, TrafficPattern::AllToAll);
  EXPECT_NEAR(net_.link_load_gbps(tree_.pod_uplink(0)), 3.0, 1e-9);
  EXPECT_NEAR(net_.link_load_gbps(tree_.pod_uplink(1)), 3.0, 1e-9);
}

TEST_F(NetworkTest, NearestNeighborOnlyBoundaryPairsCross) {
  // 0..7 on edge 0 and 8 on edge 1: only the (7,8) pair crosses.
  net_.add_source(1, {0, 1, 2, 3, 4, 5, 6, 7, 8}, 4.0, TrafficPattern::NearestNeighbor);
  EXPECT_NEAR(net_.link_load_gbps(tree_.edge_uplink(0)), 2.0, 1e-9);  // r/2
  EXPECT_NEAR(net_.link_load_gbps(tree_.edge_uplink(1)), 2.0, 1e-9);
}

TEST_F(NetworkTest, RingAddsWrapAroundPair) {
  // Nodes on edges 0 and 1; ring adds the (last, first) pair on top of
  // nearest-neighbor.
  const NodeSet nodes{0, 1, 8, 9};
  net_.add_source(1, nodes, 4.0, TrafficPattern::NearestNeighbor);
  const double nn_load = net_.link_load_gbps(tree_.edge_uplink(0));
  net_.remove_source(1);
  net_.add_source(2, nodes, 4.0, TrafficPattern::Ring);
  const double ring_load = net_.link_load_gbps(tree_.edge_uplink(0));
  EXPECT_GT(ring_load, nn_load);
}

TEST_F(NetworkTest, GatewayLoadsEdgeAndPodUplinks) {
  net_.add_source(1, {0, 1, 8}, 1.5, TrafficPattern::Gateway);
  EXPECT_NEAR(net_.link_load_gbps(tree_.edge_uplink(0)), 3.0, 1e-9);
  EXPECT_NEAR(net_.link_load_gbps(tree_.edge_uplink(1)), 1.5, 1e-9);
  EXPECT_NEAR(net_.link_load_gbps(tree_.pod_uplink(0)), 4.5, 1e-9);
}

TEST_F(NetworkTest, GatewayWorksForSingleNode) {
  net_.add_source(1, {5}, 2.0, TrafficPattern::Gateway);
  EXPECT_NEAR(net_.link_load_gbps(tree_.edge_uplink(0)), 2.0, 1e-9);
}

TEST_F(NetworkTest, SlowdownGrowsWithCompetingTraffic) {
  // A small job straddling edges 0-1.
  net_.add_source(1, {4, 5, 6, 7, 8, 9, 10, 11}, 1.0, TrafficPattern::AllToAll);
  const double alone = net_.slowdown(1);
  // A heavy competitor on the same edges.
  net_.add_source(2, {0, 1, 2, 3, 12, 13, 14, 15}, 8.0, TrafficPattern::AllToAll);
  const double contended = net_.slowdown(1);
  EXPECT_GT(contended, alone);
}

TEST_F(NetworkTest, SetRateUpdatesLoads) {
  net_.add_source(1, {0, 8}, 1.0, TrafficPattern::AllToAll);
  const double before = net_.link_load_gbps(tree_.edge_uplink(0));
  net_.set_rate(1, 2.0);
  EXPECT_NEAR(net_.link_load_gbps(tree_.edge_uplink(0)), 2.0 * before, 1e-9);
}

TEST_F(NetworkTest, RemoveSourceClearsLoads) {
  net_.add_source(1, {0, 8}, 1.0, TrafficPattern::AllToAll);
  net_.remove_source(1);
  EXPECT_FALSE(net_.has_source(1));
  EXPECT_DOUBLE_EQ(net_.link_load_gbps(tree_.edge_uplink(0)), 0.0);
}

TEST_F(NetworkTest, AmbientLoadContributes) {
  net_.set_ambient_load(tree_.edge_uplink(0), 18.0);
  EXPECT_DOUBLE_EQ(net_.link_load_gbps(tree_.edge_uplink(0)), 18.0);
  EXPECT_NEAR(net_.link_utilization(tree_.edge_uplink(0)), 0.9, 1e-9);
  // A job crossing that uplink feels it.
  net_.add_source(1, {0, 8}, 0.5, TrafficPattern::AllToAll);
  EXPECT_GT(net_.slowdown(1), 1.3);
}

TEST_F(NetworkTest, ProbeMatchesEquivalentSource) {
  net_.set_ambient_load(tree_.edge_uplink(0), 10.0);
  const NodeSet probe_nodes{0, 1, 8, 9};
  const double probed = net_.probe_slowdown(probe_nodes, 2.0, TrafficPattern::AllToAll);
  net_.add_source(7, probe_nodes, 2.0, TrafficPattern::AllToAll);
  EXPECT_NEAR(net_.slowdown(7), probed, 1e-9);
}

TEST_F(NetworkTest, ProbeDoesNotMutate) {
  const NodeSet probe_nodes{0, 8};
  (void)net_.probe_slowdown(probe_nodes, 5.0);
  EXPECT_DOUBLE_EQ(net_.link_load_gbps(tree_.edge_uplink(0)), 0.0);
}

TEST_F(NetworkTest, NodeXmitReflectsInjection) {
  net_.add_source(1, {0, 1, 8, 9}, 1.5, TrafficPattern::AllToAll);
  EXPECT_NEAR(net_.node_xmit_gbps(0), 1.5, 1e-9);
  EXPECT_NEAR(net_.node_recv_gbps(0), 1.5, 1e-9);
  EXPECT_DOUBLE_EQ(net_.node_xmit_gbps(2), 0.0);  // not part of the job
}

TEST_F(NetworkTest, GenerationBumpsOnMutation) {
  const auto g0 = net_.generation();
  net_.add_source(1, {0, 8}, 1.0, TrafficPattern::AllToAll);
  EXPECT_GT(net_.generation(), g0);
  const auto g1 = net_.generation();
  net_.set_rate(1, 2.0);
  EXPECT_GT(net_.generation(), g1);
  const auto g2 = net_.generation();
  net_.set_rate(1, 2.0);  // no-op change
  EXPECT_EQ(net_.generation(), g2);
}

TEST_F(NetworkTest, PreconditionViolations) {
  EXPECT_THROW(net_.add_source(1, {}, 1.0), PreconditionError);          // empty set
  EXPECT_THROW(net_.add_source(1, {3, 2}, 1.0), PreconditionError);     // unsorted
  EXPECT_THROW(net_.add_source(1, {0, 8}, -1.0), PreconditionError);    // negative rate
  net_.add_source(1, {0, 8}, 1.0);
  EXPECT_THROW(net_.add_source(1, {1, 9}, 1.0), PreconditionError);     // duplicate id
  EXPECT_THROW(net_.set_rate(99, 1.0), PreconditionError);              // unknown id
  EXPECT_THROW(net_.remove_source(99), PreconditionError);
  EXPECT_THROW(net_.set_ambient_load(-1, 1.0), PreconditionError);
  EXPECT_THROW((void)net_.slowdown(99), PreconditionError);
}

// Property: total node-link load equals the sum of member injections for
// any mix of sources and patterns.
TEST_F(NetworkTest, NodeLinkLoadConservation) {
  net_.add_source(1, {0, 1, 2, 3}, 2.0, TrafficPattern::AllToAll);
  net_.add_source(2, {4, 5, 6, 7, 8, 9}, 1.0, TrafficPattern::NearestNeighbor);
  net_.add_source(3, {16, 17, 40, 41}, 0.5, TrafficPattern::Ring);
  double total = 0.0;
  for (NodeId n = 0; n < tree_.num_nodes(); ++n) total += net_.link_load_gbps(tree_.node_link(n));
  EXPECT_NEAR(total, 4 * 2.0 + 6 * 1.0 + 4 * 0.5, 1e-9);
}

// --- incremental engine vs from-scratch rebuild -------------------------

TEST_F(NetworkTest, SilentSourceContributesNothingAndFeelsNothing) {
  net_.add_source(1, {0, 8}, 0.0, TrafficPattern::AllToAll);
  EXPECT_DOUBLE_EQ(net_.link_load_gbps(tree_.edge_uplink(0)), 0.0);
  net_.set_ambient_load(tree_.edge_uplink(0), 19.0);  // near saturation
  EXPECT_DOUBLE_EQ(net_.slowdown(1), 1.0);  // rate 0: traverses no links
  net_.set_rate(1, 2.0);
  EXPECT_GT(net_.slowdown(1), 1.0);
  EXPECT_NEAR(net_.link_load_gbps(tree_.edge_uplink(0)), 21.0, 1e-9);
  net_.set_rate(1, 0.0);
  EXPECT_NEAR(net_.link_load_gbps(tree_.edge_uplink(0)), 19.0, 1e-9);
  EXPECT_DOUBLE_EQ(net_.slowdown(1), 1.0);
}

TEST_F(NetworkTest, RebuildPreservesLoadsAndIsIdempotent) {
  net_.add_source(1, {0, 1, 8, 9}, 2.0, TrafficPattern::AllToAll);
  net_.add_source(2, {16, 17, 40, 41}, 1.5, TrafficPattern::Gateway);
  net_.set_ambient_load(tree_.pod_uplink(1), 4.0);
  std::vector<double> before;
  for (LinkId l = 0; l < tree_.num_links(); ++l) before.push_back(net_.link_load_gbps(l));
  net_.rebuild();
  net_.rebuild();
  for (LinkId l = 0; l < tree_.num_links(); ++l) {
    const auto idx = static_cast<std::size_t>(l);
    EXPECT_NEAR(net_.link_load_gbps(l), before[idx],
                1e-9 * std::max(1.0, before[idx]))
        << "link " << l;
  }
}

/// Replays a randomized mutation sequence (add/remove/set_rate/set_ambient
/// across all four traffic patterns) and repeatedly checks the
/// incrementally maintained per-link loads against a from-scratch
/// rebuild(), to 1e-9 relative tolerance.
TEST_F(NetworkTest, RandomizedChurnMatchesFromScratchRebuild) {
  Rng rng(0xC0FFEE);
  std::vector<SourceId> live;
  SourceId next_id = 1;
  constexpr TrafficPattern kPatterns[] = {TrafficPattern::AllToAll,
                                          TrafficPattern::NearestNeighbor, TrafficPattern::Ring,
                                          TrafficPattern::Gateway};
  const auto verify_against_rebuild = [&] {
    std::vector<double> incremental;
    for (LinkId l = 0; l < tree_.num_links(); ++l)
      incremental.push_back(net_.link_load_gbps(l));
    net_.rebuild();
    for (LinkId l = 0; l < tree_.num_links(); ++l) {
      const auto idx = static_cast<std::size_t>(l);
      ASSERT_NEAR(net_.link_load_gbps(l), incremental[idx],
                  1e-9 * std::max(1.0, std::abs(incremental[idx])))
          << "link " << l;
    }
    EXPECT_NO_THROW(net_.audit_invariants());
  };

  for (int step = 0; step < 600; ++step) {
    const auto roll = rng.uniform_int(0, 9);
    if (roll < 4 || live.empty()) {  // add
      const int width = static_cast<int>(rng.uniform_int(1, 12));
      const auto base =
          static_cast<NodeId>(rng.uniform_int(0, tree_.num_nodes() - width - 1));
      NodeSet nodes;
      for (int i = 0; i < width; ++i) nodes.push_back(base + i);
      const double rate = rng.bernoulli(0.1) ? 0.0 : rng.uniform(0.0, 4.0);
      net_.add_source(next_id, nodes, rate, kPatterns[rng.uniform_int(0, 3)]);
      live.push_back(next_id++);
    } else if (roll < 6) {  // remove
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      net_.remove_source(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    } else if (roll < 8) {  // set_rate (sometimes to/from zero)
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      net_.set_rate(live[pick], rng.bernoulli(0.15) ? 0.0 : rng.uniform(0.0, 4.0));
    } else {  // set_ambient
      const auto link = static_cast<LinkId>(rng.uniform_int(0, tree_.num_links() - 1));
      net_.set_ambient_load(link, rng.bernoulli(0.2) ? 0.0 : rng.uniform(0.0, 10.0));
    }
    if (step % 40 == 39) verify_against_rebuild();
  }
  verify_against_rebuild();

  // Drain everything: the incremental path must land back on ambient-only.
  for (const SourceId id : live) net_.remove_source(id);
  verify_against_rebuild();
}

/// Probes must agree with registering the equivalent source, for every
/// pattern, under a contended model.
TEST_F(NetworkTest, ProbeMatchesEquivalentSourceForAllPatterns) {
  net_.add_source(1, {0, 1, 2, 3, 8, 9, 10, 11}, 3.0, TrafficPattern::AllToAll);
  net_.set_ambient_load(tree_.edge_uplink(1), 6.0);
  const NodeSet probe_nodes{4, 5, 12, 13, 36, 37};
  for (const TrafficPattern pattern :
       {TrafficPattern::AllToAll, TrafficPattern::NearestNeighbor, TrafficPattern::Ring,
        TrafficPattern::Gateway}) {
    const double probed = net_.probe_slowdown(probe_nodes, 2.0, pattern);
    net_.add_source(99, probe_nodes, 2.0, pattern);
    EXPECT_NEAR(net_.slowdown(99), probed, 1e-9)
        << "pattern " << static_cast<int>(pattern);
    net_.remove_source(99);
  }
}

}  // namespace
}  // namespace rush::cluster
