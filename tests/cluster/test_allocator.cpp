#include "cluster/allocator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <optional>
#include <set>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace rush::cluster {
namespace {

NodeSet range(NodeId lo, NodeId hi) {
  NodeSet out;
  for (NodeId n = lo; n < hi; ++n) out.push_back(n);
  return out;
}

TEST(Allocator, AllocatesContiguousFirstFit) {
  NodeAllocator alloc(range(0, 32));
  const auto a = alloc.allocate(8);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(*a, range(0, 8));
  const auto b = alloc.allocate(8);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*b, range(8, 16));
  EXPECT_EQ(alloc.free_count(), 16);
}

TEST(Allocator, ReleaseMakesNodesReusable) {
  NodeAllocator alloc(range(0, 16));
  const auto a = alloc.allocate(16);
  ASSERT_TRUE(a.has_value());
  EXPECT_FALSE(alloc.allocate(1).has_value());
  alloc.release(*a);
  EXPECT_EQ(alloc.free_count(), 16);
  EXPECT_TRUE(alloc.allocate(16).has_value());
}

TEST(Allocator, ReusesFreedHole) {
  NodeAllocator alloc(range(0, 24));
  const auto a = alloc.allocate(8);
  const auto b = alloc.allocate(8);
  const auto c = alloc.allocate(8);
  ASSERT_TRUE(a && b && c);
  alloc.release(*b);
  const auto d = alloc.allocate(8);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, *b);  // first fit lands in the freed hole
}

TEST(Allocator, FragmentedFallbackGathersLowestFree) {
  NodeAllocator alloc(range(0, 12));
  const auto a = alloc.allocate(4);  // 0-3
  const auto b = alloc.allocate(4);  // 4-7
  const auto c = alloc.allocate(4);  // 8-11
  ASSERT_TRUE(a && b && c);
  alloc.release(*a);
  alloc.release(*c);
  // 8 free nodes but no contiguous run of 8: fallback to scattered.
  const auto d = alloc.allocate(8);
  ASSERT_TRUE(d.has_value());
  NodeSet expected = *a;
  expected.insert(expected.end(), c->begin(), c->end());
  EXPECT_EQ(*d, expected);
}

TEST(Allocator, RespectsManagedSubsetWithHoles) {
  // Managed set skips every 4th node (like noise-node exclusion).
  NodeSet managed;
  for (NodeId n = 0; n < 16; ++n)
    if (n % 4 != 0) managed.push_back(n);
  NodeAllocator alloc(managed);
  const auto a = alloc.allocate(6);
  ASSERT_TRUE(a.has_value());
  for (NodeId n : *a) EXPECT_NE(n % 4, 0);
  EXPECT_EQ(a->size(), 6u);
}

TEST(Allocator, CanAllocateIsConsistent) {
  NodeAllocator alloc(range(0, 8));
  EXPECT_TRUE(alloc.can_allocate(8));
  EXPECT_FALSE(alloc.can_allocate(9));
  EXPECT_FALSE(alloc.can_allocate(0));
  (void)alloc.allocate(5);
  EXPECT_TRUE(alloc.can_allocate(3));
  EXPECT_FALSE(alloc.can_allocate(4));
}

TEST(Allocator, IsFreeTracksState) {
  NodeAllocator alloc(range(0, 4));
  EXPECT_TRUE(alloc.is_free(2));
  (void)alloc.allocate(3);
  EXPECT_FALSE(alloc.is_free(2));
  EXPECT_TRUE(alloc.is_free(3));
}

TEST(Allocator, PreconditionViolations) {
  EXPECT_THROW(NodeAllocator({}), PreconditionError);
  EXPECT_THROW(NodeAllocator({3, 1}), PreconditionError);   // unsorted
  EXPECT_THROW(NodeAllocator({1, 1}), PreconditionError);   // duplicate
  NodeAllocator alloc(range(0, 4));
  EXPECT_THROW((void)alloc.allocate(0), PreconditionError);
  EXPECT_THROW(alloc.release({99}), PreconditionError);     // not managed
  EXPECT_THROW(alloc.release({0}), PreconditionError);      // not allocated
  EXPECT_THROW((void)alloc.is_free(99), PreconditionError);
}

// Property: under random allocate/release churn, no node is ever handed
// out twice and free counts stay consistent.
class AllocatorChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorChurnTest, NeverDoubleAllocates) {
  Rng rng(GetParam());
  NodeAllocator alloc(range(0, 64));
  std::vector<NodeSet> live;
  std::set<NodeId> held;
  for (int step = 0; step < 500; ++step) {
    if (!live.empty() && (rng.bernoulli(0.45) || alloc.free_count() == 0)) {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      for (NodeId n : live[idx]) held.erase(n);
      alloc.release(live[idx]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      const int want = static_cast<int>(rng.uniform_int(1, 12));
      const auto got = alloc.allocate(want);
      if (static_cast<int>(held.size()) + want <= 64) {
        ASSERT_TRUE(got.has_value());
      }
      if (got) {
        EXPECT_EQ(static_cast<int>(got->size()), want);
        for (NodeId n : *got) {
          EXPECT_TRUE(held.insert(n).second) << "node " << n << " double-allocated";
        }
        live.push_back(*got);
      }
    }
    EXPECT_EQ(alloc.free_count(), 64 - static_cast<int>(held.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorChurnTest, ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(Allocator, SetAvailableTakesNodesOutOfNewPlacements) {
  NodeAllocator alloc(range(0, 8));
  EXPECT_TRUE(alloc.set_available(3, false));
  EXPECT_FALSE(alloc.is_available(3));
  EXPECT_EQ(alloc.free_count(), 7);
  EXPECT_EQ(alloc.unavailable_count(), 1);

  const auto a = alloc.allocate(7);
  ASSERT_TRUE(a.has_value());
  for (NodeId n : *a) EXPECT_NE(n, 3);
  EXPECT_FALSE(alloc.allocate(1).has_value());  // only node 3 left, and it is out

  EXPECT_TRUE(alloc.set_available(3, true));
  EXPECT_EQ(alloc.free_count(), 1);
  const auto b = alloc.allocate(1);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ((*b)[0], 3);
}

TEST(Allocator, SetAvailableIsIdempotentAndIgnoresUnmanagedNodes) {
  NodeAllocator alloc(range(0, 8));
  // Broadcasting a cluster-wide fault: unmanaged nodes report false.
  EXPECT_FALSE(alloc.set_available(99, false));
  EXPECT_EQ(alloc.free_count(), 8);

  EXPECT_TRUE(alloc.set_available(2, false));
  EXPECT_TRUE(alloc.set_available(2, false));  // second crash: no double-count
  EXPECT_EQ(alloc.free_count(), 7);
  EXPECT_EQ(alloc.unavailable_count(), 1);
  EXPECT_TRUE(alloc.set_available(2, true));
  EXPECT_TRUE(alloc.set_available(2, true));
  EXPECT_EQ(alloc.free_count(), 8);
  EXPECT_EQ(alloc.unavailable_count(), 0);
}

TEST(Allocator, ReleaseParksNodesThatWentOutWhileAllocated) {
  NodeAllocator alloc(range(0, 8));
  const auto a = alloc.allocate(4);  // nodes 0-3
  ASSERT_TRUE(a.has_value());

  // Node 1 crashes mid-run: it stays bound to the job until release...
  EXPECT_TRUE(alloc.set_available(1, false));
  EXPECT_EQ(alloc.free_count(), 4);

  // ...then parks instead of rejoining the free pool.
  alloc.release(*a);
  EXPECT_EQ(alloc.free_count(), 7);
  EXPECT_EQ(alloc.unavailable_count(), 1);
  EXPECT_FALSE(alloc.is_free(1));

  const auto b = alloc.allocate(7);
  ASSERT_TRUE(b.has_value());
  for (NodeId n : *b) EXPECT_NE(n, 1);
  alloc.audit_invariants();
}

/// Pre-word-bitset reference model: three slot-indexed boolean bitmaps
/// and the straightforward bit-at-a-time first-fit scan. The placement
/// order the production allocator must reproduce exactly.
class ReferenceAllocator {
 public:
  explicit ReferenceAllocator(NodeSet managed)
      : managed_(std::move(managed)), free_(managed_.size(), true),
        allocated_(managed_.size(), false), out_(managed_.size(), false) {}

  std::optional<NodeSet> allocate(int count) {
    const auto need = static_cast<std::size_t>(count);
    if (need > free_count()) return std::nullopt;
    const std::size_t n = managed_.size();
    // First maximal free run of at least `count` consecutive slots.
    for (std::size_t i = 0; i < n;) {
      if (!free_[i]) {
        ++i;
        continue;
      }
      std::size_t j = i;
      while (j < n && free_[j]) ++j;
      if (j - i >= need) return take(i, i + need);
      i = j;
    }
    // Fragmented fallback: lowest-indexed free slots.
    NodeSet out;
    for (std::size_t i = 0; i < n && out.size() < need; ++i) {
      if (!free_[i]) continue;
      free_[i] = false;
      allocated_[i] = true;
      out.push_back(managed_[i]);
    }
    return out;
  }

  void release(const NodeSet& nodes) {
    for (NodeId node : nodes) {
      const std::size_t i = index(node);
      allocated_[i] = false;
      if (!out_[i]) free_[i] = true;
    }
  }

  void set_available(NodeId node, bool available) {
    const std::size_t i = index(node);
    if (out_[i] != available) return;
    out_[i] = !available;
    if (available) {
      if (!allocated_[i]) free_[i] = true;
    } else {
      free_[i] = false;
    }
  }

  std::size_t free_count() const {
    std::size_t total = 0;
    for (const bool b : free_) total += b ? 1 : 0;
    return total;
  }

 private:
  NodeSet take(std::size_t begin, std::size_t end) {
    NodeSet out;
    for (std::size_t i = begin; i < end; ++i) {
      free_[i] = false;
      allocated_[i] = true;
      out.push_back(managed_[i]);
    }
    return out;
  }
  std::size_t index(NodeId node) const {
    return static_cast<std::size_t>(
        std::lower_bound(managed_.begin(), managed_.end(), node) - managed_.begin());
  }

  NodeSet managed_;
  std::vector<bool> free_;
  std::vector<bool> allocated_;
  std::vector<bool> out_;
};

TEST(Allocator, DifferentialAgainstBitmapReferenceUnderChurn) {
  // Randomized allocate/release/out-of-service churn over a cluster big
  // enough to span several 64-bit words (word-boundary runs, partial
  // tail word), checking every placement against the reference model.
  for (const std::uint64_t seed : {3ULL, 11ULL, 2026ULL}) {
    NodeAllocator alloc(range(0, 200));  // 3 words + 8-bit tail
    ReferenceAllocator ref(range(0, 200));
    Rng rng(seed);
    std::vector<NodeSet> live;
    for (int step = 0; step < 2000; ++step) {
      const double roll = rng.uniform();
      if (roll < 0.45) {
        const int count = static_cast<int>(rng.uniform_int(1, 80));
        const auto got = alloc.allocate(count);
        const auto want = ref.allocate(count);
        ASSERT_EQ(got.has_value(), want.has_value()) << "seed " << seed << " step " << step;
        if (got.has_value()) {
          ASSERT_EQ(*got, *want) << "seed " << seed << " step " << step;
          live.push_back(*got);
        }
      } else if (roll < 0.85) {
        if (live.empty()) continue;
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
        alloc.release(live[pick]);
        ref.release(live[pick]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      } else {
        const auto node = static_cast<NodeId>(rng.uniform_int(0, 199));
        const bool available = rng.bernoulli(0.5);
        alloc.set_available(node, available);
        ref.set_available(node, available);
      }
      ASSERT_EQ(static_cast<std::size_t>(alloc.free_count()), ref.free_count())
          << "seed " << seed << " step " << step;
      alloc.audit_invariants();
    }
  }
}

}  // namespace
}  // namespace rush::cluster
