#include "cluster/lustre.hpp"

#include <gtest/gtest.h>

#include "cluster/congestion.hpp"
#include "common/error.hpp"

namespace rush::cluster {
namespace {

TEST(Lustre, EmptyModelIsHealthy) {
  LustreModel fs(100.0);
  EXPECT_DOUBLE_EQ(fs.total_demand_gbps(), 0.0);
  EXPECT_DOUBLE_EQ(fs.slowdown(), 1.0);
  EXPECT_DOUBLE_EQ(fs.capacity_gbps(), 100.0);
}

TEST(Lustre, DemandAggregatesOverClientsAndNodes) {
  LustreModel fs(100.0);
  fs.add_client(1, {0, 1, 2, 3}, 2.0);
  fs.add_client(2, {10, 11}, 5.0);
  EXPECT_DOUBLE_EQ(fs.total_demand_gbps(), 4 * 2.0 + 2 * 5.0);
}

TEST(Lustre, SlowdownFollowsCongestionCurve) {
  LustreModel fs(100.0);
  fs.add_client(1, {0}, 90.0);
  EXPECT_NEAR(fs.slowdown(), congestion_slowdown(0.9), 1e-12);
  fs.set_rate(1, 150.0);
  EXPECT_NEAR(fs.slowdown(), congestion_slowdown(1.5), 1e-12);
}

TEST(Lustre, AmbientDemandCounts) {
  LustreModel fs(100.0);
  fs.set_ambient_demand(60.0);
  EXPECT_DOUBLE_EQ(fs.total_demand_gbps(), 60.0);
  fs.add_client(1, {0, 1}, 20.0);
  EXPECT_DOUBLE_EQ(fs.total_demand_gbps(), 100.0);
}

TEST(Lustre, NodeRatesSplitByReadFraction) {
  LustreModel fs(1000.0);  // uncontended
  fs.add_client(1, {5, 6}, 4.0, /*read_fraction=*/0.75);
  EXPECT_NEAR(fs.node_read_gbps(5), 3.0, 1e-6);
  EXPECT_NEAR(fs.node_write_gbps(5), 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(fs.node_read_gbps(99), 0.0);  // non-client node
}

TEST(Lustre, AchievedRatesShrinkUnderContention) {
  LustreModel fs(10.0);
  fs.add_client(1, {0}, 4.0, 0.5);
  const double healthy = fs.node_read_gbps(0);
  fs.set_ambient_demand(20.0);  // oversubscribe the pool
  const double contended = fs.node_read_gbps(0);
  EXPECT_LT(contended, healthy);
  EXPECT_NEAR(contended, 2.0 / fs.slowdown(), 1e-9);
}

TEST(Lustre, RemoveClientRestoresHealth) {
  LustreModel fs(10.0);
  fs.add_client(1, {0, 1, 2}, 10.0);
  EXPECT_GT(fs.slowdown(), 2.0);
  fs.remove_client(1);
  EXPECT_FALSE(fs.has_client(1));
  EXPECT_DOUBLE_EQ(fs.slowdown(), 1.0);
}

TEST(Lustre, GenerationBumpsOnMutation) {
  LustreModel fs(10.0);
  const auto g0 = fs.generation();
  fs.add_client(1, {0}, 1.0);
  EXPECT_GT(fs.generation(), g0);
  const auto g1 = fs.generation();
  fs.set_rate(1, 1.0);  // no-op
  EXPECT_EQ(fs.generation(), g1);
  fs.set_rate(1, 2.0);
  EXPECT_GT(fs.generation(), g1);
}

TEST(Lustre, PreconditionViolations) {
  EXPECT_THROW(LustreModel(0.0), PreconditionError);
  LustreModel fs(10.0);
  EXPECT_THROW(fs.add_client(1, {}, 1.0), PreconditionError);
  EXPECT_THROW(fs.add_client(1, {0}, -1.0), PreconditionError);
  EXPECT_THROW(fs.add_client(1, {0}, 1.0, 1.5), PreconditionError);
  fs.add_client(1, {0}, 1.0);
  EXPECT_THROW(fs.add_client(1, {1}, 1.0), PreconditionError);
  EXPECT_THROW(fs.set_rate(9, 1.0), PreconditionError);
  EXPECT_THROW(fs.remove_client(9), PreconditionError);
  EXPECT_THROW(fs.set_ambient_demand(-1.0), PreconditionError);
}

}  // namespace
}  // namespace rush::cluster
