#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace rush::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine e;
  EXPECT_EQ(e.now(), 0.0);
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(Engine, ExecutesInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(3.0, [&] { order.push_back(3); });
  e.schedule_at(1.0, [&] { order.push_back(1); });
  e.schedule_at(2.0, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 3.0);
  EXPECT_EQ(e.events_executed(), 3u);
}

TEST(Engine, EqualTimestampsFireFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) e.schedule_at(5.0, [&order, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, ClockAdvancesToEventTime) {
  Engine e;
  double seen = -1.0;
  e.schedule_at(7.5, [&] { seen = e.now(); });
  e.run();
  EXPECT_EQ(seen, 7.5);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine e;
  double seen = -1.0;
  e.schedule_at(10.0, [&] {
    e.schedule_after(5.0, [&] { seen = e.now(); });
  });
  e.run();
  EXPECT_EQ(seen, 15.0);
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine e;
  e.schedule_at(10.0, [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(5.0, [] {}), PreconditionError);
  EXPECT_THROW(e.schedule_after(-1.0, [] {}), PreconditionError);
}

TEST(Engine, NullHandlerThrows) {
  Engine e;
  EXPECT_THROW(e.schedule_at(1.0, nullptr), PreconditionError);
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool fired = false;
  const EventId id = e.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(e.events_executed(), 0u);
}

TEST(Engine, CancelReturnsFalseForUnknownOrFired) {
  Engine e;
  EXPECT_FALSE(e.cancel(12345));
  const EventId id = e.schedule_at(1.0, [] {});
  e.run();
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, PendingEventsTracksLiveCount) {
  Engine e;
  const EventId a = e.schedule_at(1.0, [] {});
  e.schedule_at(2.0, [] {});
  EXPECT_EQ(e.pending_events(), 2u);
  e.cancel(a);
  EXPECT_EQ(e.pending_events(), 1u);
  e.run();
  EXPECT_EQ(e.pending_events(), 0u);
}

TEST(Engine, StepExecutesExactlyOne) {
  Engine e;
  int count = 0;
  e.schedule_at(1.0, [&] { ++count; });
  e.schedule_at(2.0, [&] { ++count; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(e.step());
}

TEST(Engine, RunUntilStopsAtHorizonAndAdvancesClock) {
  Engine e;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) e.schedule_at(t, [&fired, &e] { fired.push_back(e.now()); });
  e.run_until(2.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(e.now(), 2.5);
  EXPECT_EQ(e.pending_events(), 2u);
  e.run_until(10.0);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_EQ(e.now(), 10.0);
}

TEST(Engine, RunUntilIncludesBoundaryEvents) {
  Engine e;
  bool fired = false;
  e.schedule_at(5.0, [&] { fired = true; });
  e.run_until(5.0);
  EXPECT_TRUE(fired);
}

TEST(Engine, RunUntilBackwardThrows) {
  Engine e;
  e.run_until(5.0);
  EXPECT_THROW(e.run_until(4.0), PreconditionError);
}

TEST(Engine, PeriodicFiresRepeatedly) {
  Engine e;
  std::vector<double> times;
  e.schedule_periodic(10.0, 5.0, [&] { times.push_back(e.now()); });
  e.run_until(31.0);
  EXPECT_EQ(times, (std::vector<double>{10.0, 15.0, 20.0, 25.0, 30.0}));
}

TEST(Engine, PeriodicCancelStopsFutureFirings) {
  Engine e;
  int count = 0;
  const EventId id = e.schedule_periodic(1.0, 1.0, [&] { ++count; });
  e.run_until(3.5);
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(e.cancel(id));
  e.run_until(10.0);
  EXPECT_EQ(count, 3);
}

TEST(Engine, PeriodicSelfCancelFromCallback) {
  Engine e;
  int count = 0;
  EventId id = 0;
  id = e.schedule_periodic(1.0, 1.0, [&] {
    if (++count == 2) e.cancel(id);
  });
  e.run_until(10.0);
  EXPECT_EQ(count, 2);
}

TEST(Engine, PeriodicValidatesArguments) {
  Engine e;
  EXPECT_THROW(e.schedule_periodic(0.0, 0.0, [] {}), PreconditionError);
  e.run_until(5.0);
  EXPECT_THROW(e.schedule_periodic(1.0, 1.0, [] {}), PreconditionError);  // start in past
}

TEST(Engine, EventsScheduledDuringRunAreExecuted) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(1.0, [&] {
    order.push_back(1);
    e.schedule_at(1.0, [&] { order.push_back(2); });  // same timestamp, later id
  });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, CancelFromInsideEarlierEvent) {
  Engine e;
  bool second_fired = false;
  const EventId second = e.schedule_at(2.0, [&] { second_fired = true; });
  e.schedule_at(1.0, [&] { EXPECT_TRUE(e.cancel(second)); });
  e.run();
  EXPECT_FALSE(second_fired);
}

TEST(Engine, ManyEventsStressOrdering) {
  Engine e;
  Rng rng(3);
  std::vector<double> fired;
  for (int i = 0; i < 5000; ++i) {
    const double t = rng.uniform(0.0, 1000.0);
    e.schedule_at(t, [&fired, &e] { fired.push_back(e.now()); });
  }
  e.run();
  ASSERT_EQ(fired.size(), 5000u);
  for (std::size_t i = 1; i < fired.size(); ++i) EXPECT_LE(fired[i - 1], fired[i]);
}

}  // namespace
}  // namespace rush::sim
