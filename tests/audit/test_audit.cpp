// Layer-3 correctness harness: prove every runtime invariant auditor
// actually fires when its subsystem's state is corrupted, and stays quiet
// on healthy state. Corruption goes through the AuditTestPeer friends so
// no production API needs to expose mutable internals.

#include <gtest/gtest.h>

#include "cluster/allocator.hpp"
#include "cluster/network.hpp"
#include "common/audit.hpp"
#include "sim/engine.hpp"
#include "telemetry/store.hpp"

namespace rush::sim {
struct AuditTestPeer {
  static void rewind_clock_past_events(Engine& e) {
    // Clock ahead of a queued event: the monotonicity invariant breaks.
    e.now_ = e.heap_.front().t + 1000.0;
  }
  static void scramble_heap(Engine& e) {
    std::swap(e.heap_.front(), e.heap_.back());
  }
  static void orphan_event(Engine& e) { e.queued_.erase(e.heap_.front().id); }
};
}  // namespace rush::sim

namespace rush::cluster {
struct AuditTestPeer {
  static void fake_free_count(NodeAllocator& a) { a.free_count_ += 3; }
  static void truncate_bitmap(NodeAllocator& a) { a.free_.pop_back(); }
  static void poison_tail_bit(NodeAllocator& a) { a.free_.back() |= 1ULL << 63; }
};
struct NetworkAuditTestPeer {
  static void leak_load(NetworkModel& m) { m.loads_.at(0) += 7.5; }
  static void negate_load(NetworkModel& m) { m.loads_.at(0) = -1.0; }
  static void corrupt_cached_shares(NetworkModel& m) {
    m.sources_.begin()->second.unit_shares.at(0).gbps += 0.25;
  }
};
}  // namespace rush::cluster

namespace rush::telemetry {
struct AuditTestPeer {
  static void swap_frame_times(CounterStore& s) {
    std::swap(s.frames_.front().t, s.frames_.back().t);
  }
  static void stale_aggregate(CounterStore& s) { s.frames_.back().all_sum[0] += 1.0; }
  static void break_prefix_chain(CounterStore& s) {
    s.frames_.back().prefix_sum[0] += 1.0;
  }
};
}  // namespace rush::telemetry

namespace {

using rush::AuditError;

// --- sim/engine: event-queue time monotonicity --------------------------

TEST(AuditEngine, CleanEngineAuditsQuiet) {
  rush::sim::Engine engine;
  engine.schedule_at(5.0, [] {});
  engine.schedule_at(2.0, [] {});
  EXPECT_NO_THROW(engine.audit_invariants());
  engine.run();
  EXPECT_NO_THROW(engine.audit_invariants());
}

TEST(AuditEngine, FiresWhenClockPassesQueuedEvent) {
  rush::sim::Engine engine;
  engine.schedule_at(1.0, [] {});
  rush::sim::AuditTestPeer::rewind_clock_past_events(engine);
  EXPECT_THROW(engine.audit_invariants(), AuditError);
}

TEST(AuditEngine, FiresOnBrokenHeapProperty) {
  rush::sim::Engine engine;
  engine.schedule_at(1.0, [] {});
  engine.schedule_at(2.0, [] {});
  engine.schedule_at(3.0, [] {});
  rush::sim::AuditTestPeer::scramble_heap(engine);
  EXPECT_THROW(engine.audit_invariants(), AuditError);
}

TEST(AuditEngine, FiresOnUntrackedQueuedEvent) {
  rush::sim::Engine engine;
  engine.schedule_at(1.0, [] {});
  rush::sim::AuditTestPeer::orphan_event(engine);
  EXPECT_THROW(engine.audit_invariants(), AuditError);
}

// --- cluster/allocator: bitmap consistency ------------------------------

TEST(AuditAllocator, CleanAllocatorAuditsQuiet) {
  rush::cluster::NodeAllocator alloc({0, 1, 2, 3, 4, 5, 6, 7});
  const auto nodes = alloc.allocate(3);
  ASSERT_TRUE(nodes.has_value());
  EXPECT_NO_THROW(alloc.audit_invariants());
  alloc.release(*nodes);
  EXPECT_NO_THROW(alloc.audit_invariants());
}

TEST(AuditAllocator, FiresOnFreeCountDrift) {
  rush::cluster::NodeAllocator alloc({0, 1, 2, 3});
  rush::cluster::AuditTestPeer::fake_free_count(alloc);
  EXPECT_THROW(alloc.audit_invariants(), AuditError);
}

TEST(AuditAllocator, FiresOnBitmapShapeMismatch) {
  rush::cluster::NodeAllocator alloc({0, 1, 2, 3});
  rush::cluster::AuditTestPeer::truncate_bitmap(alloc);
  EXPECT_THROW(alloc.audit_invariants(), AuditError);
}

TEST(AuditAllocator, FiresOnStrayBitPastManagedCount) {
  // Word-level scans rely on every bit past the managed count staying
  // zero; a stray tail bit would corrupt popcount free accounting and
  // contiguous-run searches.
  rush::cluster::NodeAllocator alloc({0, 1, 2, 3});
  rush::cluster::AuditTestPeer::poison_tail_bit(alloc);
  EXPECT_THROW(alloc.audit_invariants(), AuditError);
}

// --- cluster/network: per-link load conservation ------------------------

class AuditNetwork : public ::testing::Test {
 protected:
  AuditNetwork() : tree_(small_config()), model_(tree_) {}
  static rush::cluster::FatTreeConfig small_config() {
    rush::cluster::FatTreeConfig cfg;
    cfg.pods = 2;
    cfg.edges_per_pod = 2;
    cfg.nodes_per_edge = 4;
    return cfg;
  }
  rush::cluster::FatTree tree_;
  rush::cluster::NetworkModel model_;
};

TEST_F(AuditNetwork, CleanModelConservesLoad) {
  model_.add_source(1, {0, 1, 4, 5}, 2.0);
  model_.set_ambient_load(tree_.edge_uplink(0), 3.0);
  EXPECT_NO_THROW(model_.audit_invariants());
}

TEST_F(AuditNetwork, FiresWhenLinkLoadLeaksFromDemand) {
  model_.add_source(1, {0, 1, 4, 5}, 2.0);
  rush::cluster::NetworkAuditTestPeer::leak_load(model_);
  EXPECT_THROW(model_.audit_invariants(), AuditError);
}

TEST_F(AuditNetwork, FiresOnNegativeLoad) {
  model_.add_source(1, {0, 1}, 1.0);
  rush::cluster::NetworkAuditTestPeer::negate_load(model_);
  EXPECT_THROW(model_.audit_invariants(), AuditError);
}

TEST_F(AuditNetwork, ModelIsConsistentImmediatelyAfterEveryMutation) {
  // Incremental maintenance: no lazy recompute, so every mutation leaves
  // loads_ matching the cached flow maps without any query in between.
  model_.add_source(1, {0, 1}, 1.0);
  EXPECT_NO_THROW(model_.audit_invariants());
  model_.set_rate(1, 3.0);
  EXPECT_NO_THROW(model_.audit_invariants());
  model_.set_ambient_load(tree_.edge_uplink(0), 2.0);
  EXPECT_NO_THROW(model_.audit_invariants());
  model_.remove_source(1);
  EXPECT_NO_THROW(model_.audit_invariants());
}

TEST_F(AuditNetwork, FiresWhenCachedFlowMapDrifts) {
  // The differential audit re-derives every source's flow map from the
  // topology; a corrupted cached unit share must be caught.
  model_.add_source(1, {0, 1, 4, 5}, 2.0);
  rush::cluster::NetworkAuditTestPeer::corrupt_cached_shares(model_);
  EXPECT_THROW(model_.audit_invariants(), AuditError);
}

TEST_F(AuditNetwork, RebuildRestoresCorruptedLoads) {
  model_.add_source(1, {0, 1, 4, 5}, 2.0);
  rush::cluster::NetworkAuditTestPeer::leak_load(model_);
  model_.rebuild();
  EXPECT_NO_THROW(model_.audit_invariants());
}

// --- telemetry/store: time-index ordering -------------------------------

TEST(AuditStore, CleanStoreAuditsQuiet) {
  rush::telemetry::CounterStore store({0, 1}, 2, 8);
  const std::vector<float> frame{1.0f, 2.0f, 3.0f, 4.0f};
  store.add_frame(0.0, frame);
  store.add_frame(1.0, frame);
  EXPECT_NO_THROW(store.audit_invariants());
}

TEST(AuditStore, FiresOnTimeIndexDisorder) {
  rush::telemetry::CounterStore store({0, 1}, 2, 8);
  const std::vector<float> frame{1.0f, 2.0f, 3.0f, 4.0f};
  store.add_frame(0.0, frame);
  store.add_frame(5.0, frame);
  rush::telemetry::AuditTestPeer::swap_frame_times(store);
  EXPECT_THROW(store.audit_invariants(), AuditError);
}

TEST(AuditStore, FiresOnStaleAggregate) {
  rush::telemetry::CounterStore store({0, 1}, 2, 8);
  const std::vector<float> frame{1.0f, 2.0f, 3.0f, 4.0f};
  store.add_frame(0.0, frame);
  rush::telemetry::AuditTestPeer::stale_aggregate(store);
  EXPECT_THROW(store.audit_invariants(), AuditError);
}

TEST(AuditStore, FiresOnBrokenPrefixChain) {
  rush::telemetry::CounterStore store({0, 1}, 2, 8);
  const std::vector<float> frame{1.0f, 2.0f, 3.0f, 4.0f};
  store.add_frame(0.0, frame);
  store.add_frame(1.0, frame);
  rush::telemetry::AuditTestPeer::break_prefix_chain(store);
  EXPECT_THROW(store.audit_invariants(), AuditError);
}

// --- the RUSH_AUDIT build toggle ----------------------------------------

TEST(AuditConfig, HooksMatchBuildConfiguration) {
#if defined(RUSH_AUDIT_ENABLED) && RUSH_AUDIT_ENABLED
  EXPECT_TRUE(rush::audit::enabled());
#else
  EXPECT_FALSE(rush::audit::enabled());
#endif
}

}  // namespace
