// Degraded-mode behaviour under injected faults: scheduler requeue on
// node crash, drained-node exclusion, oracle fallback when telemetry or
// canaries are unavailable, and the zero-fault byte-identity guarantee.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "faults/injector.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"

namespace rush {
namespace {

// ---------------------------------------------------------------------------
// Scheduler-level fault handling (crash requeue, drain exclusion).
// ---------------------------------------------------------------------------

cluster::FatTreeConfig sched_config() {
  cluster::FatTreeConfig cfg;
  cfg.pods = 1;
  cfg.edges_per_pod = 2;
  cfg.nodes_per_edge = 32;  // 64 nodes
  return cfg;
}

/// Deterministic app: no traffic, no noise — run time equals base time.
apps::AppProfile quiet_app(double runtime_s) {
  apps::AppProfile app;
  app.name = "quiet";
  app.base_runtime_s = runtime_s;
  app.compute_frac = 1.0;
  app.network_frac = 0.0;
  app.io_frac = 0.0;
  app.net_gbps_per_node = 0.0;
  app.io_gbps_per_node = 0.0;
  app.noise_sigma = 0.0;
  app.serial_fraction = 1.0;
  return app;
}

sched::JobSpec make_spec(int nodes, double runtime_s) {
  sched::JobSpec spec;
  spec.app = quiet_app(runtime_s);
  spec.num_nodes = nodes;
  spec.walltime_estimate_s = runtime_s * 1.2;
  return spec;
}

struct FaultWorld {
  explicit FaultWorld(const char* plan_json)
      : tree(sched_config()), net(tree), fs(1000.0),
        exec(engine, net, fs, exec_config(), Rng(1)),
        allocator(tree.nodes_in_pod(0)),
        injector(engine, faults::FaultPlan::from_json(plan_json)),
        trace(sink) {}

  static apps::ExecutionConfig exec_config() {
    apps::ExecutionConfig cfg;
    cfg.os_noise = 0.0;
    return cfg;
  }

  std::unique_ptr<sched::Scheduler> make_scheduler() {
    sched::SchedulerConfig config;
    config.faults = &injector;
    config.trace = &trace;
    config.metrics = &metrics;
    return std::make_unique<sched::Scheduler>(
        engine, allocator, exec, std::make_unique<sched::FcfsPolicy>(),
        std::make_unique<sched::FcfsPolicy>(), config, nullptr);
  }

  std::string trace_text() {
    trace.flush();
    return sink.str();
  }

  sim::Engine engine;
  cluster::FatTree tree;
  cluster::NetworkModel net;
  cluster::LustreModel fs;
  apps::ExecutionModel exec;
  cluster::NodeAllocator allocator;
  faults::FaultInjector injector;
  std::ostringstream sink;
  obs::EventTrace trace;
  obs::MetricsRegistry metrics;
};

TEST(DegradedScheduler, MidRunCrashRequeuesExactlyOnceAndJobCompletes) {
  // Node 5 dies at t=300 and returns at t=700; the full-machine job must
  // be requeued once and restart only after the restore.
  FaultWorld w(R"({"events": [
      {"kind": "node_crash", "at_s": 300, "node": 5, "duration_s": 400}]})");
  const auto sched = w.make_scheduler();
  w.injector.arm();

  const sched::JobId a = sched->submit(make_spec(64, 1000.0));
  w.engine.run();

  EXPECT_EQ(sched->completed_count(), 1u);
  const sched::Job& job = sched->job(a);
  EXPECT_EQ(job.state, sched::JobState::Completed);
  EXPECT_EQ(job.requeues, 1);
  EXPECT_EQ(sched->total_requeues(), 1u);
  EXPECT_GE(job.start_s, 700.0);  // could not restart before the node came back
  EXPECT_NEAR(job.end_s, job.start_s + 1000.0, 1.0);

  const std::string out = w.trace_text();
  EXPECT_NE(out.find("\"ev\":\"fault_job_requeue\""), std::string::npos) << out;
  EXPECT_EQ(w.metrics.counter("sched.fault_requeues").value(), 1u);
}

TEST(DegradedScheduler, CrashOnlyRequeuesVictimsOnTheDeadNode) {
  FaultWorld w(R"({"events": [
      {"kind": "node_crash", "at_s": 300, "node": 20, "duration_s": 2000}]})");
  const auto sched = w.make_scheduler();
  w.injector.arm();

  const sched::JobId a = sched->submit(make_spec(16, 1000.0));
  const sched::JobId b = sched->submit(make_spec(16, 1000.0));
  ASSERT_EQ(sched->running_count(), 2u);
  const bool victim_is_b = std::binary_search(sched->job(b).nodes.begin(),
                                              sched->job(b).nodes.end(), cluster::NodeId{20});
  ASSERT_TRUE(victim_is_b || std::binary_search(sched->job(a).nodes.begin(),
                                                sched->job(a).nodes.end(), cluster::NodeId{20}));
  const sched::JobId victim = victim_is_b ? b : a;
  const sched::JobId bystander = victim_is_b ? a : b;

  w.engine.run();

  EXPECT_EQ(sched->completed_count(), 2u);
  EXPECT_EQ(sched->job(victim).requeues, 1);
  EXPECT_EQ(sched->job(bystander).requeues, 0);
  EXPECT_EQ(sched->total_requeues(), 1u);
  // Plenty of healthy nodes left: the victim restarts immediately.
  EXPECT_NEAR(sched->job(victim).start_s, 300.0, 1.0);
  EXPECT_NEAR(sched->job(bystander).end_s, 1000.0, 1.0);
}

TEST(DegradedScheduler, DrainedNodeIsExcludedUntilRestore) {
  // Node 3 drains at t=50 (no victims: nothing is running yet) and comes
  // back at t=500; a full-machine job submitted at t=100 must wait.
  FaultWorld w(R"({"events": [
      {"kind": "node_drain",   "at_s": 50,  "node": 3},
      {"kind": "node_restore", "at_s": 500, "node": 3}]})");
  const auto sched = w.make_scheduler();
  w.injector.arm();

  sched::JobId a = 0;
  w.engine.schedule_at(100.0, [&] { a = sched->submit(make_spec(64, 200.0)); });
  w.engine.run();

  EXPECT_EQ(sched->completed_count(), 1u);
  const sched::Job& job = sched->job(a);
  EXPECT_EQ(job.requeues, 0);  // a drain never kills running work
  EXPECT_GE(job.start_s, 500.0);
  EXPECT_LE(job.start_s, 501.0);  // the restore itself re-triggers a pass
}

// ---------------------------------------------------------------------------
// Experiment-level degraded mode (oracle fallback, byte identity).
// ---------------------------------------------------------------------------

constexpr std::size_t kF = telemetry::FeatureAssembler::kNumFeatures;

/// Small synthetic corpus over the real proxy apps (mirrors
/// tests/core/test_experiment.cpp) so the runner can train a predictor.
core::Corpus synthetic_corpus(std::uint64_t seed) {
  Rng rng(seed);
  core::Corpus c;
  const auto names = apps::proxy_app_names();
  for (std::size_t a = 0; a < names.size(); ++a) {
    const auto app = *apps::find_app(names[a]);
    for (int i = 0; i < 60; ++i) {
      core::CollectedSample s;
      s.app = names[a];
      s.app_index = static_cast<int>(a);
      s.workload = app.workload;
      s.node_count = 16;
      const double congestion =
          rng.bernoulli(0.15) ? rng.uniform(0.5, 1.0) : rng.uniform(0.0, 0.25);
      s.runtime_s = app.base_runtime_s * (1.0 + 0.5 * congestion) +
                    rng.normal(0.0, app.base_runtime_s * 0.01);
      s.features_all.assign(kF, 0.0);
      s.features_job.assign(kF, 0.0);
      s.features_all[0] = congestion;
      s.features_job[0] = congestion;
      c.add(std::move(s));
    }
  }
  return c;
}

core::ExperimentSpec tiny_spec() {
  core::ExperimentSpec spec = core::experiment_spec(core::ExperimentId::ADAA);
  spec.num_jobs = 21;
  return spec;
}

TEST(DegradedExperiment, SamplerDropoutForcesOracleFallbackWithZeroLostJobs) {
  std::ostringstream sink;
  obs::EventTrace trace(sink);
  obs::MetricsRegistry metrics;

  core::ExperimentConfig config;
  config.trials_per_policy = 1;
  config.jobs = 1;
  config.trace = &trace;
  config.metrics = &metrics;
  // The sampler daemon is down for the whole session: counters go stale
  // and the oracle must stop trusting them.
  config.fault_plan = faults::FaultPlan::from_json(
      R"({"events": [{"kind": "sampler_dropout", "at_s": 0, "duration_s": 100000}]})");

  core::ExperimentRunner runner(synthetic_corpus(2), config);
  const core::ExperimentSpec spec = tiny_spec();
  const core::TrainedPredictor predictor = runner.train_predictor(spec);

  const core::TrialResult rush = runner.run_trial(spec, true, 99, &predictor);
  EXPECT_EQ(rush.jobs.size(), 21u);  // the session asserts completion: zero lost
  EXPECT_GT(rush.oracle_evaluations, 0u);
  EXPECT_GT(rush.oracle_fallbacks, 0u);
  EXPECT_EQ(rush.oracle_fallbacks, rush.oracle_evaluations);  // never healthy
  EXPECT_EQ(rush.fault_requeues, 0u);

  // Baseline never consults the oracle, so it cannot fall back.
  const core::TrialResult base = runner.run_trial(spec, false, 99, nullptr);
  EXPECT_EQ(base.jobs.size(), 21u);
  EXPECT_EQ(base.oracle_fallbacks, 0u);

  trace.flush();
  const std::string out = sink.str();
  EXPECT_NE(out.find("\"ev\":\"fault_oracle_fallback\""), std::string::npos);
  EXPECT_NE(out.find("stale-counters"), std::string::npos) << out.substr(0, 2000);
  EXPECT_GT(metrics.counter("oracle.fallbacks").value(), 0u);
}

TEST(DegradedExperiment, CanaryTimeoutTriggersLastKnownGoodFallback) {
  core::ExperimentConfig config;
  config.trials_per_policy = 1;
  config.jobs = 1;
  config.oracle_fallback = core::OracleFallback::LastKnownGood;
  config.fault_plan = faults::FaultPlan::from_json(
      R"({"events": [{"kind": "canary_timeout", "at_s": 0, "duration_s": 100000}]})");

  core::ExperimentRunner runner(synthetic_corpus(2), config);
  const core::ExperimentSpec spec = tiny_spec();
  const core::TrainedPredictor predictor = runner.train_predictor(spec);
  const core::TrialResult rush = runner.run_trial(spec, true, 99, &predictor);
  EXPECT_EQ(rush.jobs.size(), 21u);
  EXPECT_GT(rush.oracle_fallbacks, 0u);
}

TEST(DegradedExperiment, NodeCrashPlanLosesNoJobs) {
  core::ExperimentConfig config;
  config.trials_per_policy = 1;
  config.jobs = 1;
  config.fault_plan = faults::FaultPlan::from_json(R"({"events": [
      {"kind": "node_crash", "at_s": 200, "node": 0, "duration_s": 600},
      {"kind": "node_crash", "at_s": 400, "node": 17, "duration_s": 600}]})");

  core::ExperimentRunner runner(synthetic_corpus(2), config);
  const core::ExperimentSpec spec = tiny_spec();
  const core::TrainedPredictor predictor = runner.train_predictor(spec);
  const core::TrialResult rush = runner.run_trial(spec, true, 99, &predictor);
  const core::TrialResult base = runner.run_trial(spec, false, 99, nullptr);
  // Crashed jobs are requeued, never dropped (the session asserts that
  // every submitted job completed).
  EXPECT_EQ(rush.jobs.size(), 21u);
  EXPECT_EQ(base.jobs.size(), 21u);
}

/// One baseline + one RUSH trial traced into a string.
std::string traced_run(const core::ExperimentConfig& base_config) {
  std::ostringstream sink;
  obs::EventTrace trace(sink);
  core::ExperimentConfig config = base_config;
  config.trials_per_policy = 1;
  config.jobs = 1;
  config.trace = &trace;
  core::ExperimentRunner runner(synthetic_corpus(5), config);
  const core::ExperimentSpec spec = tiny_spec();
  const core::TrainedPredictor predictor = runner.train_predictor(spec);
  (void)runner.run_trial(spec, false, 42, nullptr);
  (void)runner.run_trial(spec, true, 42, &predictor);
  trace.flush();
  return sink.str();
}

TEST(DegradedExperiment, EmptyPlanIsByteIdenticalToNoPlan) {
  const std::string without = traced_run(core::ExperimentConfig{});

  core::ExperimentConfig explicit_empty;
  explicit_empty.fault_plan = faults::FaultPlan::from_json(R"({"v": 1, "events": []})");
  explicit_empty.oracle_fallback = core::OracleFallback::LastKnownGood;  // must not matter
  const std::string with_empty = traced_run(explicit_empty);

  ASSERT_FALSE(without.empty());
  EXPECT_EQ(without, with_empty);
}

TEST(DegradedExperiment, PlanBeyondTheHorizonIsByteIdenticalToo) {
  // The injector is constructed and armed, but its only event sits far
  // past session end: nothing may perturb the run, including event-id
  // allocation order among same-time events.
  const std::string without = traced_run(core::ExperimentConfig{});

  core::ExperimentConfig far_future;
  far_future.fault_plan = faults::FaultPlan::from_json(
      R"({"events": [{"kind": "node_crash", "at_s": 50000000, "node": 0}]})");
  const std::string with_far = traced_run(far_future);

  ASSERT_FALSE(without.empty());
  EXPECT_EQ(without, with_far);
}

TEST(DegradedExperiment, SamePlanSameSeedIsReproducible) {
  core::ExperimentConfig config;
  config.fault_plan = faults::FaultPlan::from_json(R"({"events": [
      {"kind": "node_crash",      "at_s": 200, "node": 0, "duration_s": 600},
      {"kind": "sampler_dropout", "at_s": 300, "duration_s": 900}]})");
  const std::string first = traced_run(config);
  const std::string second = traced_run(config);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace rush
