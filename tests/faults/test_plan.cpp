// FaultPlan JSON parsing and validation (docs/fault-injection.md schema).
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "faults/plan.hpp"

using rush::ParseError;
using namespace rush::faults;

TEST(FaultPlan, ParsesEveryKindWithDefaults) {
  const FaultPlan plan = FaultPlan::from_json(R"({
    "v": 1,
    "events": [
      {"kind": "node_crash",      "at_s": 100, "node": 3},
      {"kind": "node_drain",      "at_s": 200, "node": 4, "duration_s": 60},
      {"kind": "node_restore",    "at_s": 300, "node": 3},
      {"kind": "link_degrade",    "at_s": 400, "link": 2, "factor": 0.5, "duration_s": 120},
      {"kind": "link_restore",    "at_s": 600, "link": 2},
      {"kind": "sampler_dropout", "at_s": 700, "duration_s": 90},
      {"kind": "counter_corrupt", "at_s": 800, "node": 7, "duration_s": 30},
      {"kind": "canary_timeout",  "at_s": 900, "duration_s": 45.5}
    ]
  })");
  ASSERT_EQ(plan.events.size(), 8u);
  EXPECT_FALSE(plan.empty());

  EXPECT_EQ(plan.events[0].kind, FaultKind::NodeCrash);
  EXPECT_DOUBLE_EQ(plan.events[0].at_s, 100.0);
  EXPECT_EQ(plan.events[0].node, 3);
  EXPECT_EQ(plan.events[0].link, -1);         // default
  EXPECT_DOUBLE_EQ(plan.events[0].factor, 1.0);       // default
  EXPECT_DOUBLE_EQ(plan.events[0].duration_s, 0.0);   // default: permanent

  EXPECT_EQ(plan.events[3].kind, FaultKind::LinkDegrade);
  EXPECT_DOUBLE_EQ(plan.events[3].factor, 0.5);
  EXPECT_EQ(plan.events[6].node, 7);
  EXPECT_DOUBLE_EQ(plan.events[7].duration_s, 45.5);
}

TEST(FaultPlan, KindNamesRoundTrip) {
  for (int k = 0; k < kNumFaultKinds; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    FaultKind back = FaultKind::NodeCrash;
    ASSERT_TRUE(fault_kind_from_name(fault_kind_name(kind), back)) << fault_kind_name(kind);
    EXPECT_EQ(back, kind);
  }
  FaultKind out;
  EXPECT_FALSE(fault_kind_from_name("meteor_strike", out));
}

TEST(FaultPlan, EmptyEventsIsAValidEmptyPlan) {
  const FaultPlan plan = FaultPlan::from_json(R"({"events": []})");
  EXPECT_TRUE(plan.empty());
}

TEST(FaultPlan, MalformedDocumentsAreRejected) {
  // Not an object / trailing garbage / bad version.
  EXPECT_THROW((void)FaultPlan::from_json("[]"), ParseError);
  EXPECT_THROW((void)FaultPlan::from_json(R"({"events": []} extra)"), ParseError);
  EXPECT_THROW((void)FaultPlan::from_json(R"({"v": 2, "events": []})"), ParseError);
  EXPECT_THROW((void)FaultPlan::from_json(R"({"v": 1})"), ParseError);  // missing events
  // Unknown keys anywhere are errors, not silently ignored.
  EXPECT_THROW((void)FaultPlan::from_json(R"({"events": [], "comment": "x"})"), ParseError);
  EXPECT_THROW(
      (void)FaultPlan::from_json(
          R"({"events": [{"kind": "node_crash", "at_s": 1, "node": 0, "severity": 3}]})"),
      ParseError);
  // Missing required keys.
  EXPECT_THROW((void)FaultPlan::from_json(R"({"events": [{"at_s": 1, "node": 0}]})"), ParseError);
  EXPECT_THROW((void)FaultPlan::from_json(R"({"events": [{"kind": "node_crash", "node": 0}]})"),
               ParseError);
  EXPECT_THROW((void)FaultPlan::from_json(R"({"events": [{"kind": "warp_core", "at_s": 1}]})"),
               ParseError);
}

TEST(FaultPlan, ValidationRejectsBadTargetsAndRanges) {
  auto reject = [](const char* json) {
    EXPECT_THROW((void)FaultPlan::from_json(json), ParseError) << json;
  };
  // Node kinds need a node.
  reject(R"({"events": [{"kind": "node_crash", "at_s": 1}]})");
  reject(R"({"events": [{"kind": "node_restore", "at_s": 1}]})");
  // Link kinds need a link; degrade factor must be in (0, 1].
  reject(R"({"events": [{"kind": "link_degrade", "at_s": 1, "factor": 0.5}]})");
  reject(R"({"events": [{"kind": "link_degrade", "at_s": 1, "link": 0, "factor": 0}]})");
  reject(R"({"events": [{"kind": "link_degrade", "at_s": 1, "link": 0, "factor": 1.5}]})");
  // Window kinds need a positive duration.
  reject(R"({"events": [{"kind": "sampler_dropout", "at_s": 1}]})");
  reject(R"({"events": [{"kind": "canary_timeout", "at_s": 1, "duration_s": 0}]})");
  // Times must be finite and non-negative.
  reject(R"({"events": [{"kind": "node_crash", "at_s": -5, "node": 0}]})");
  reject(R"({"events": [{"kind": "node_crash", "at_s": 1, "node": 0, "duration_s": -1}]})");
  // factor = 1.0 is legal (degenerate but harmless).
  const FaultPlan ok = FaultPlan::from_json(
      R"({"events": [{"kind": "link_degrade", "at_s": 1, "link": 0, "factor": 1.0}]})");
  EXPECT_EQ(ok.events.size(), 1u);
  // CounterCorrupt without a node targets every node.
  const FaultPlan all = FaultPlan::from_json(
      R"({"events": [{"kind": "counter_corrupt", "at_s": 1, "duration_s": 10}]})");
  EXPECT_EQ(all.events[0].node, -1);
}

TEST(FaultPlan, StreamOverloadMatchesStringOverload) {
  const char* json =
      R"({"events": [{"kind": "node_drain", "at_s": 10, "node": 1, "duration_s": 5}]})";
  std::istringstream in(json);
  const FaultPlan from_stream = FaultPlan::from_json(in);
  const FaultPlan from_string = FaultPlan::from_json(json);
  ASSERT_EQ(from_stream.events.size(), from_string.events.size());
  EXPECT_EQ(from_stream.events[0].kind, from_string.events[0].kind);
  EXPECT_DOUBLE_EQ(from_stream.events[0].at_s, from_string.events[0].at_s);
  EXPECT_EQ(from_stream.events[0].node, from_string.events[0].node);
  EXPECT_DOUBLE_EQ(from_stream.events[0].duration_s, from_string.events[0].duration_s);
}
