// FaultInjector behaviour over a live engine: arming, node events,
// sampler dropout/corruption hooks, link health, trace + metrics output.
#include "faults/injector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/lustre.hpp"
#include "cluster/network.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/engine.hpp"
#include "telemetry/sampler.hpp"
#include "telemetry/schema.hpp"
#include "telemetry/store.hpp"

namespace rush::faults {
namespace {

cluster::FatTreeConfig small_tree() {
  cluster::FatTreeConfig cfg;
  cfg.pods = 1;
  cfg.edges_per_pod = 2;
  cfg.nodes_per_edge = 4;
  cfg.node_link_gbps = 10.0;
  cfg.edge_uplink_gbps = 20.0;
  cfg.pod_uplink_gbps = 80.0;
  return cfg;
}

FaultPlan plan_of(std::vector<FaultEvent> events) {
  FaultPlan plan;
  plan.events = std::move(events);
  return plan;
}

FaultEvent make_event(FaultKind kind, sim::Time at_s) {
  FaultEvent ev;
  ev.kind = kind;
  ev.at_s = at_s;
  return ev;
}

class InjectorTest : public ::testing::Test {
 protected:
  InjectorTest()
      : tree_(small_tree()), net_(tree_), lustre_(100.0),
        store_({0, 1, 2, 3}, telemetry::num_counters(), 40),
        sampler_(engine_, net_, lustre_, store_, {}, Rng(7)) {}

  sim::Engine engine_;
  cluster::FatTree tree_;
  cluster::NetworkModel net_;
  cluster::LustreModel lustre_;
  telemetry::CounterStore store_;
  telemetry::CounterSampler sampler_;
};

TEST_F(InjectorTest, CrashDrainRestoreDriveNodeEventsAndDownSet) {
  FaultEvent crash = make_event(FaultKind::NodeCrash, 100.0);
  crash.node = 2;
  FaultEvent drain = make_event(FaultKind::NodeDrain, 200.0);
  drain.node = 5;
  FaultEvent restore = make_event(FaultKind::NodeRestore, 300.0);
  restore.node = 2;

  FaultInjector injector(engine_, plan_of({crash, drain, restore}));
  std::vector<std::pair<FaultKind, cluster::NodeId>> seen;
  injector.subscribe_node_events(
      [&](const NodeFaultEvent& ev) { seen.emplace_back(ev.kind, ev.node); });
  injector.arm();

  EXPECT_FALSE(injector.node_down(2));
  engine_.run_until(150.0);
  EXPECT_TRUE(injector.node_down(2));
  EXPECT_FALSE(injector.node_down(5));
  engine_.run_until(250.0);
  EXPECT_TRUE(injector.node_down(5));
  engine_.run_until(350.0);
  EXPECT_FALSE(injector.node_down(2));  // restored
  EXPECT_TRUE(injector.node_down(5));   // drain had no duration: permanent

  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair{FaultKind::NodeCrash, cluster::NodeId{2}}));
  EXPECT_EQ(seen[1], (std::pair{FaultKind::NodeDrain, cluster::NodeId{5}}));
  EXPECT_EQ(seen[2], (std::pair{FaultKind::NodeRestore, cluster::NodeId{2}}));
  EXPECT_EQ(injector.faults_fired(), 3u);
}

TEST_F(InjectorTest, BoundedCrashSynthesizesItsOwnRestore) {
  FaultEvent crash = make_event(FaultKind::NodeCrash, 100.0);
  crash.node = 1;
  crash.duration_s = 50.0;

  FaultInjector injector(engine_, plan_of({crash}));
  injector.arm();
  engine_.run_until(120.0);
  EXPECT_TRUE(injector.node_down(1));
  engine_.run_until(160.0);
  EXPECT_FALSE(injector.node_down(1));
  EXPECT_EQ(injector.faults_fired(), 2u);  // crash + synthesized restore
}

TEST_F(InjectorTest, DuplicateCrashAndOrphanRestoreAreIdempotent) {
  FaultEvent first = make_event(FaultKind::NodeCrash, 100.0);
  first.node = 3;
  FaultEvent again = make_event(FaultKind::NodeCrash, 110.0);
  again.node = 3;
  FaultEvent orphan = make_event(FaultKind::NodeRestore, 120.0);
  orphan.node = 6;  // never went down

  FaultInjector injector(engine_, plan_of({first, again, orphan}));
  int events = 0;
  injector.subscribe_node_events([&](const NodeFaultEvent&) { ++events; });
  injector.arm();
  engine_.run_until(150.0);
  EXPECT_TRUE(injector.node_down(3));
  EXPECT_EQ(events, 1);  // duplicate crash and orphan restore notified nobody
  EXPECT_EQ(injector.faults_fired(), 1u);
}

TEST_F(InjectorTest, LinkDegradeScalesUtilizationAndAutoRestores) {
  const cluster::LinkId uplink = tree_.edge_uplink(0);
  FaultEvent degrade = make_event(FaultKind::LinkDegrade, 100.0);
  degrade.link = uplink;
  degrade.factor = 0.5;
  degrade.duration_s = 100.0;

  FaultInjector injector(engine_, plan_of({degrade}));
  injector.attach_network(&net_);
  injector.arm();

  // Cross-edge traffic rides the degraded uplink.
  net_.add_source(1, {0, 4}, 4.0, cluster::TrafficPattern::AllToAll);
  const double util_before = net_.link_utilization(uplink);
  EXPECT_GT(util_before, 0.0);

  engine_.run_until(150.0);
  EXPECT_DOUBLE_EQ(net_.link_health(uplink), 0.5);
  // Same load over half the capacity: utilization doubles exactly.
  EXPECT_DOUBLE_EQ(net_.link_utilization(uplink), 2.0 * util_before);

  engine_.run_until(250.0);
  EXPECT_DOUBLE_EQ(net_.link_health(uplink), 1.0);
  EXPECT_DOUBLE_EQ(net_.link_utilization(uplink), util_before);
}

TEST_F(InjectorTest, SamplerDropoutLeavesAGapAndCountsFrames) {
  FaultEvent dropout = make_event(FaultKind::SamplerDropout, 100.0);
  dropout.duration_s = 65.0;  // swallows the 100s and 130s ticks (30s period)

  FaultInjector injector(engine_, plan_of({dropout}));
  injector.attach_sampler(&sampler_);
  injector.arm();

  sampler_.start();  // frames at 0, 30, 60, ...
  engine_.run_until(200.0);
  sampler_.stop();

  // Ticks at 0,30,60,90,120,150,180 = 7; the 120 and 150 ticks are inside
  // [100, 165) and dropped.
  EXPECT_EQ(injector.frames_dropped(), 2u);
  EXPECT_EQ(store_.frame_count(), 5u);
  EXPECT_TRUE(injector.sampler_dropped_out(110.0));
  EXPECT_FALSE(injector.sampler_dropped_out(165.0));  // half-open window
  EXPECT_FALSE(injector.sampler_dropped_out(99.9));
}

TEST_F(InjectorTest, CounterCorruptionIsQuarantinedButDetectable) {
  FaultEvent corrupt = make_event(FaultKind::CounterCorrupt, 50.0);
  corrupt.node = 1;
  corrupt.duration_s = 40.0;

  FaultInjector injector(engine_, plan_of({corrupt}));
  injector.attach_sampler(&sampler_);
  injector.arm();

  sampler_.start();
  engine_.run_until(130.0);
  sampler_.stop();

  // Ticks at 60 and 90 fall inside [50, 90): exactly the 60s frame plus
  // nothing else (90 is outside the half-open window).
  EXPECT_EQ(injector.frames_corrupted(), 1u);
  EXPECT_EQ(store_.corrupt_frames_in(0.0, 130.0), 1u);
  EXPECT_TRUE(injector.counters_corrupted(60.0));
  EXPECT_FALSE(injector.counters_corrupted(90.0));  // half-open window
  EXPECT_FALSE(injector.counters_corrupted(49.9));
  // Quarantine at ingest: nothing non-finite reaches aggregation.
  const auto agg = store_.aggregate_all(0.0, 130.0);
  for (const auto& a : agg) {
    EXPECT_TRUE(std::isfinite(a.min) && std::isfinite(a.max) && std::isfinite(a.mean));
  }
}

TEST_F(InjectorTest, CanaryWindowAnswersPointQueries) {
  FaultEvent timeout = make_event(FaultKind::CanaryTimeout, 500.0);
  timeout.duration_s = 100.0;

  FaultInjector injector(engine_, plan_of({timeout}));
  injector.arm();
  EXPECT_FALSE(injector.canary_timed_out(499.0));
  EXPECT_TRUE(injector.canary_timed_out(500.0));
  EXPECT_TRUE(injector.canary_timed_out(599.9));
  EXPECT_FALSE(injector.canary_timed_out(600.0));
}

TEST_F(InjectorTest, TraceAndMetricsRecordEveryFiredFault) {
  FaultEvent crash = make_event(FaultKind::NodeCrash, 10.0);
  crash.node = 0;
  crash.duration_s = 20.0;
  FaultEvent dropout = make_event(FaultKind::SamplerDropout, 40.0);
  dropout.duration_s = 10.0;

  std::ostringstream sink;
  obs::EventTrace trace(sink);
  obs::MetricsRegistry metrics;

  FaultInjector injector(engine_, plan_of({crash, dropout}));
  injector.set_obs(&trace, &metrics);
  injector.arm();
  engine_.run_until(100.0);
  trace.flush();

  const std::string out = sink.str();
  EXPECT_NE(out.find("\"ev\":\"fault_node_down\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"ev\":\"fault_node_restore\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"ev\":\"fault_sampler_dropout\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"drain\":false"), std::string::npos) << out;

  EXPECT_EQ(metrics.counter("faults.node_crash").value(), 1u);
  EXPECT_EQ(metrics.counter("faults.node_restore").value(), 1u);
  EXPECT_EQ(metrics.counter("faults.sampler_dropout").value(), 1u);
  EXPECT_EQ(metrics.counter("faults.node_drain").value(), 0u);
}

TEST_F(InjectorTest, ArmTwiceAndInvalidPlansAreRejected) {
  FaultInjector injector(engine_, plan_of({}));
  injector.arm();
  EXPECT_THROW(injector.arm(), PreconditionError);

  FaultEvent bad = make_event(FaultKind::NodeCrash, 1.0);  // node missing
  EXPECT_THROW(FaultInjector(engine_, plan_of({bad})), ParseError);
}

}  // namespace
}  // namespace rush::faults
