#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace rush {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedIsUsable) {
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r.next());
  EXPECT_GT(seen.size(), 95u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversFullRangeInclusive) {
  Rng r(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.uniform_int(3, 8);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 8);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng r(13);
  EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(17);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng r(19);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += r.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng r(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = r.exponential(0.5);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, LognormalIsPositive) {
  Rng r(29);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(r.lognormal(0.0, 0.5), 0.0);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (r.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, PoissonSmallMean) {
  Rng r(41);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.poisson(3.0));
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng r(43);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.poisson(100.0));
  EXPECT_NEAR(sum / n, 100.0, 0.5);
}

TEST(Rng, PoissonZeroMean) {
  Rng r(47);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.poisson(0.0), 0u);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(55);
  Rng a = parent.split(1);
  Rng b = parent.split(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng p1(99);
  Rng p2(99);
  Rng a = p1.split(42);
  Rng b = p2.split(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng r(61);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  r.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleHandlesSmallInputs) {
  Rng r(67);
  std::vector<int> empty;
  r.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  r.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng r(71);
  for (int trial = 0; trial < 50; ++trial) {
    const auto idx = r.sample_indices(20, 7);
    ASSERT_EQ(idx.size(), 7u);
    std::set<std::size_t> unique(idx.begin(), idx.end());
    EXPECT_EQ(unique.size(), 7u);
    for (std::size_t i : idx) EXPECT_LT(i, 20u);
  }
}

TEST(Rng, SampleIndicesClampsOversizedRequest) {
  Rng r(73);
  const auto idx = r.sample_indices(5, 10);
  EXPECT_EQ(idx.size(), 5u);
}

// Each possible value of a small uniform_int should appear with roughly
// equal frequency (chi-square-ish sanity sweep over several ranges).
class RngUniformityTest : public ::testing::TestWithParam<int> {};

TEST_P(RngUniformityTest, UniformIntIsBalanced) {
  const int k = GetParam();
  Rng r(1000 + static_cast<std::uint64_t>(k));
  std::vector<int> counts(static_cast<std::size_t>(k), 0);
  const int n = 20000 * k;
  for (int i = 0; i < n; ++i)
    ++counts[static_cast<std::size_t>(r.uniform_int(0, k - 1))];
  const double expected = static_cast<double>(n) / k;
  for (int c : counts) EXPECT_NEAR(c, expected, 0.05 * expected);
}

INSTANTIATE_TEST_SUITE_P(Ranges, RngUniformityTest, ::testing::Values(2, 3, 5, 7, 16));

}  // namespace
}  // namespace rush
