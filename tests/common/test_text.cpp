// Tests for Table, CSV, and string utilities.
#include <gtest/gtest.h>

#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace rush {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table t({"app", "runs"});
  t.add_row({"Laghos", "27"});
  t.add_row({"AMG", "3"});
  const std::string out = t.render();
  EXPECT_NE(out.find("app    | runs"), std::string::npos);
  EXPECT_NE(out.find("-------+-----"), std::string::npos);
  EXPECT_NE(out.find("Laghos | 27"), std::string::npos);
  EXPECT_NE(out.find("AMG    | 3"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), PreconditionError);
}

TEST(Table, CellAccess) {
  Table t({"a"});
  t.add_row({"x"});
  EXPECT_EQ(t.cell(0, 0), "x");
  EXPECT_THROW((void)t.cell(1, 0), PreconditionError);
  EXPECT_THROW((void)t.cell(0, 1), PreconditionError);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
  EXPECT_EQ(Table::pct(0.058, 1), "5.8%");
}

TEST(Csv, WriteSimpleRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(Csv, QuotesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"has,comma", "has\"quote", "has\nnewline", "plain"});
  EXPECT_EQ(os.str(), "\"has,comma\",\"has\"\"quote\",\"has\nnewline\",plain\n");
}

TEST(Csv, NumericRowPrecision) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_numeric_row({1.5, 2.0, -0.25}, 6);
  EXPECT_EQ(os.str(), "1.5,2,-0.25\n");
}

TEST(Csv, RoundTripWithQuoting) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"x,y", "line1\nline2", "q\"q", ""});
  w.write_row({"1", "2", "3", "4"});
  const auto rows = parse_csv(os.str());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"x,y", "line1\nline2", "q\"q", ""}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2", "3", "4"}));
}

TEST(Csv, ParsesCrlfAndMissingTrailingNewline) {
  const auto rows = parse_csv("a,b\r\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(Csv, EmptyTextYieldsNoRows) { EXPECT_TRUE(parse_csv("").empty()); }

TEST(Csv, ThrowsOnUnterminatedQuote) {
  EXPECT_THROW(parse_csv("\"open"), ParseError);
}

TEST(Strings, Split) {
  EXPECT_EQ(str::split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(str::split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(str::split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(str::split("trailing,", ','), (std::vector<std::string>{"trailing", ""}));
}

TEST(Strings, Join) {
  EXPECT_EQ(str::join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(str::join({}, ","), "");
  EXPECT_EQ(str::join({"solo"}, ","), "solo");
}

TEST(Strings, Trim) {
  EXPECT_EQ(str::trim("  x  "), "x");
  EXPECT_EQ(str::trim("\t\r\nx\n"), "x");
  EXPECT_EQ(str::trim("   "), "");
  EXPECT_EQ(str::trim("no-ws"), "no-ws");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(str::starts_with("prefix-rest", "prefix"));
  EXPECT_FALSE(str::starts_with("pre", "prefix"));
  EXPECT_TRUE(str::starts_with("anything", ""));
}

TEST(Strings, ToDoubleStrict) {
  EXPECT_DOUBLE_EQ(str::to_double("3.5"), 3.5);
  EXPECT_DOUBLE_EQ(str::to_double("  -2e3 "), -2000.0);
  EXPECT_THROW((void)str::to_double("abc"), ParseError);
  EXPECT_THROW((void)str::to_double("1.5x"), ParseError);
  EXPECT_THROW((void)str::to_double(""), ParseError);
}

TEST(Strings, ToIntStrict) {
  EXPECT_EQ(str::to_int("42"), 42);
  EXPECT_EQ(str::to_int(" -7 "), -7);
  EXPECT_THROW((void)str::to_int("4.2"), ParseError);
  EXPECT_THROW((void)str::to_int(""), ParseError);
}

TEST(Strings, FormatDuration) {
  EXPECT_EQ(str::format_duration(12.345), "12.35s");
  EXPECT_EQ(str::format_duration(125.0), "2m5.0s");
  EXPECT_EQ(str::format_duration(3725.0), "1h2m5s");
  EXPECT_EQ(str::format_duration(-30.0), "-30.00s");
}

}  // namespace
}  // namespace rush
