// RUSH_EXPECTS / RUSH_ASSERT / RUSH_AUDIT_CHECK contracts: the right
// exception type, a message carrying the failed expression and file:line,
// and no evaluation side effects on the success path.

#include <gtest/gtest.h>

#include <string>

#include "common/audit.hpp"
#include "common/error.hpp"

namespace {

TEST(Error, ExpectsPassesOnTrue) {
  int evaluations = 0;
  RUSH_EXPECTS(++evaluations == 1);
  EXPECT_EQ(evaluations, 1);
}

TEST(Error, ExpectsThrowsPreconditionError) {
  EXPECT_THROW(RUSH_EXPECTS(1 + 1 == 3), rush::PreconditionError);
}

TEST(Error, AssertThrowsInvariantError) {
  EXPECT_THROW(RUSH_ASSERT(false), rush::InvariantError);
}

TEST(Error, BothAreLogicErrors) {
  EXPECT_THROW(RUSH_EXPECTS(false), std::logic_error);
  EXPECT_THROW(RUSH_ASSERT(false), std::logic_error);
}

TEST(Error, ExpectsMessageCarriesExpressionAndLocation) {
  try {
    RUSH_EXPECTS(2 > 3);
    FAIL() << "RUSH_EXPECTS did not throw";
  } catch (const rush::PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition failed"), std::string::npos) << what;
    EXPECT_NE(what.find("2 > 3"), std::string::npos) << what;
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find(":"), std::string::npos) << what;
  }
}

TEST(Error, AssertMessageCarriesExpressionAndLocation) {
  try {
    RUSH_ASSERT(1 == 2);
    FAIL() << "RUSH_ASSERT did not throw";
  } catch (const rush::InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("invariant failed"), std::string::npos) << what;
    EXPECT_NE(what.find("1 == 2"), std::string::npos) << what;
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos) << what;
  }
}

TEST(Error, LineNumberMatchesThrowSite) {
  int line = 0;
  try {
    line = __LINE__ + 1;
    RUSH_EXPECTS(false);
    FAIL();
  } catch (const rush::PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find(":" + std::to_string(line)), std::string::npos)
        << e.what();
  }
}

TEST(Error, ParseErrorIsRuntimeError) {
  const rush::ParseError err("bad token");
  EXPECT_STREQ(err.what(), "bad token");
  EXPECT_THROW(throw rush::ParseError("x"), std::runtime_error);
}

TEST(Error, AuditCheckThrowsAuditErrorWithDetail) {
  try {
    RUSH_AUDIT_CHECK(0 == 1, "counter drifted by 3");
    FAIL() << "RUSH_AUDIT_CHECK did not throw";
  } catch (const rush::AuditError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("audit failed"), std::string::npos) << what;
    EXPECT_NE(what.find("0 == 1"), std::string::npos) << what;
    EXPECT_NE(what.find("counter drifted by 3"), std::string::npos) << what;
    EXPECT_NE(what.find("test_error.cpp"), std::string::npos) << what;
  }
}

TEST(Error, AuditErrorIsDistinctFromInvariantError) {
  // Tests rely on telling "auditor fired" apart from RUSH_ASSERT.
  EXPECT_THROW(RUSH_AUDIT_CHECK(false, ""), rush::AuditError);
  try {
    RUSH_AUDIT_CHECK(false, "");
  } catch (const rush::InvariantError&) {
    FAIL() << "AuditError must not derive from InvariantError";
  } catch (const rush::AuditError&) {
  }
}

}  // namespace
