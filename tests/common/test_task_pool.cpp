#include "common/task_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace rush {
namespace {

TEST(TaskPool, RunsEveryIndexExactlyOnce) {
  TaskPool pool(4);
  constexpr std::size_t kN = 257;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for_indexed(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(TaskPool, IndexedWritesNeedNoSynchronization) {
  TaskPool pool(3);
  constexpr std::size_t kN = 100;
  std::vector<std::uint64_t> out(kN, 0);
  pool.parallel_for_indexed(kN, [&](std::size_t i) { out[i] = i * i; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(TaskPool, EmptyDispatchReturnsImmediately) {
  TaskPool pool(2);
  bool ran = false;
  pool.parallel_for_indexed(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(TaskPool, SerialPoolRunsInlineInOrder) {
  TaskPool pool(1);
  EXPECT_EQ(pool.jobs(), 1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.parallel_for_indexed(10, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), std::size_t{0});
  EXPECT_EQ(order, expected);
}

TEST(TaskPool, NestedDispatchRunsInlineWithoutDeadlock) {
  TaskPool pool(4);
  constexpr std::size_t kOuter = 8;
  constexpr std::size_t kInner = 16;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  pool.parallel_for_indexed(kOuter, [&](std::size_t o) {
    // From a worker this must run inline (no re-entry into the queue).
    pool.parallel_for_indexed(kInner,
                              [&](std::size_t i) { hits[o * kInner + i].fetch_add(1); });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
}

TEST(TaskPool, FirstExceptionPropagatesAndPoolSurvives) {
  TaskPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for_indexed(64,
                                         [&](std::size_t i) {
                                           if (i == 3) throw std::runtime_error("boom");
                                           ran.fetch_add(1);
                                         }),
               std::runtime_error);
  // The batch aborted early: fewer than all non-throwing indices may have
  // run, never more.
  EXPECT_LE(ran.load(), 63);

  // The pool is still usable after an aborted batch.
  std::atomic<int> after{0};
  pool.parallel_for_indexed(32, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 32);
}

TEST(TaskPool, ConcurrentDispatchesFromSeveralThreads) {
  TaskPool pool(4);
  constexpr int kDispatchers = 3;
  constexpr std::size_t kN = 64;
  std::vector<std::atomic<int>> hits(kDispatchers * kN);
  std::vector<std::thread> dispatchers;  // rush-analyze: allow(raw-thread)
  dispatchers.reserve(kDispatchers);
  for (int d = 0; d < kDispatchers; ++d) {
    dispatchers.emplace_back([&, d] {
      pool.parallel_for_indexed(
          kN, [&, d](std::size_t i) { hits[static_cast<std::size_t>(d) * kN + i].fetch_add(1); });
    });
  }
  for (auto& t : dispatchers) t.join();
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << "slot " << i;
}

TEST(TaskPool, RejectsNonPositiveWidth) {
  EXPECT_THROW(TaskPool(0), PreconditionError);
  EXPECT_THROW(TaskPool(-2), PreconditionError);
}

TEST(TaskPoolFreeFunction, JobsOneIsStrictlySerial) {
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  parallel_for_indexed(1, 5, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(TaskPoolFreeFunction, DedicatedWidthCoversAllIndices) {
  std::vector<std::atomic<int>> hits(128);
  parallel_for_indexed(4, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(TaskPoolFreeFunction, SharedPoolPolicyAndSizeLock) {
  std::vector<std::atomic<int>> hits(32);
  parallel_for_indexed(0, hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1);

  // Once built, re-requesting the current size is a no-op and any other
  // size is a precondition error.
  const int width = shared_pool().jobs();
  EXPECT_GE(width, 1);
  EXPECT_NO_THROW(set_shared_jobs(width));
  EXPECT_THROW(set_shared_jobs(width + 1), PreconditionError);
}

TEST(TaskPool, DefaultJobsIsPositive) { EXPECT_GE(TaskPool::default_jobs(), 1); }

TEST(TaskPool, WorkerThreadFlagVisibleInsideBodies) {
  EXPECT_FALSE(TaskPool::on_worker_thread());
  TaskPool pool(2);
  std::atomic<bool> saw_worker{false};
  // With a 2-wide pool the caller participates too, so only record
  // observations from non-caller threads.
  const auto caller = std::this_thread::get_id();
  pool.parallel_for_indexed(64, [&](std::size_t) {
    if (std::this_thread::get_id() != caller && TaskPool::on_worker_thread())
      saw_worker.store(true);
  });
  SUCCEED();  // primary assertion is above: the flag never crashes / lies on the caller
  EXPECT_FALSE(TaskPool::on_worker_thread());
}

}  // namespace
}  // namespace rush
