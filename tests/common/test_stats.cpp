#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace rush {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.0, 1e-12);  // classic population-variance example
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SampleVarianceUsesBessel) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_NEAR(s.sample_variance(), 1.0, 1e-12);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-12);
}

TEST(RunningStats, ClearResets) {
  RunningStats s;
  s.add(1.0);
  s.clear();
  EXPECT_TRUE(s.empty());
}

// Property: merging partial accumulators equals accumulating everything.
class RunningStatsMergeTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RunningStatsMergeTest, MergeEqualsCombined) {
  const auto [na, nb] = GetParam();
  Rng rng(static_cast<std::uint64_t>(na * 1000 + nb));
  RunningStats a, b, combined;
  for (int i = 0; i < na; ++i) {
    const double x = rng.normal(3.0, 2.0);
    a.add(x);
    combined.add(x);
  }
  for (int i = 0; i < nb; ++i) {
    const double x = rng.normal(-1.0, 0.5);
    b.add(x);
    combined.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_NEAR(a.mean(), combined.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), combined.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), combined.min());
  EXPECT_DOUBLE_EQ(a.max(), combined.max());
}

INSTANTIATE_TEST_SUITE_P(Sizes, RunningStatsMergeTest,
                         ::testing::Values(std::pair{0, 5}, std::pair{5, 0}, std::pair{1, 1},
                                           std::pair{10, 100}, std::pair{1000, 7}));

TEST(Stats, BatchHelpersMatchRunning) {
  Rng rng(5);
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-10, 10);
    xs.push_back(x);
    s.add(x);
  }
  EXPECT_NEAR(stats::mean(xs), s.mean(), 1e-9);
  EXPECT_NEAR(stats::variance(xs), s.variance(), 1e-9);
  EXPECT_NEAR(stats::sample_stddev(xs), s.sample_stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(stats::min(xs), s.min());
  EXPECT_DOUBLE_EQ(stats::max(xs), s.max());
}

TEST(Stats, EmptySpansAreZero) {
  const std::vector<double> empty;
  EXPECT_EQ(stats::mean(empty), 0.0);
  EXPECT_EQ(stats::variance(empty), 0.0);
  EXPECT_EQ(stats::min(empty), 0.0);
  EXPECT_EQ(stats::max(empty), 0.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(stats::median(xs), 2.5);
}

TEST(Stats, QuantileSingleElement) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(stats::quantile(xs, 0.3), 7.0);
}

TEST(Stats, QuantileIgnoresInputOrder) {
  const std::vector<double> a{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(stats::median(a), 3.0);
}

TEST(Stats, QuantileRejectsEmptyAndBadQ) {
  const std::vector<double> empty;
  EXPECT_THROW((void)stats::quantile(empty, 0.5), PreconditionError);
  const std::vector<double> xs{1.0};
  EXPECT_THROW((void)stats::quantile(xs, 1.5), PreconditionError);
}

TEST(Stats, ZscoreBasics) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};  // mean 3, sample sd ~1.581
  EXPECT_NEAR(stats::zscore(3.0, xs), 0.0, 1e-12);
  EXPECT_NEAR(stats::zscore(4.581, xs), 1.0, 1e-3);
}

TEST(Stats, ZscoreDegenerateSpreadIsZero) {
  const std::vector<double> xs{2.0, 2.0, 2.0};
  EXPECT_EQ(stats::zscore(100.0, xs), 0.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(2), 6.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
}

TEST(Summary, FiveNumberSummary) {
  std::vector<double> xs;
  for (int i = 1; i <= 101; ++i) xs.push_back(static_cast<double>(i));
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 101u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 101.0);
  EXPECT_DOUBLE_EQ(s.median, 51.0);
  EXPECT_DOUBLE_EQ(s.q1, 26.0);
  EXPECT_DOUBLE_EQ(s.q3, 76.0);
  EXPECT_DOUBLE_EQ(s.mean, 51.0);
}

TEST(Summary, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.median, 0.0);
}

}  // namespace
}  // namespace rush
