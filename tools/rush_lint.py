#!/usr/bin/env python3
"""Repo-specific lint for the RUSH codebase (layer 2 of the correctness
harness — the rules clang-tidy cannot express).

Rules
-----
const-cast       const_cast is banned outright; restructure instead.
missing-expects  (sim/, sched/ only) public non-const member functions
                 that take arguments must validate them with RUSH_EXPECTS.
trace-sim-time   every obs::EventTrace emit_* call site must pass the
                 current *simulated* time as its first argument (an
                 engine now() call or a *_s sim-time variable) — never a
                 wall-clock expression. Trace records stamped with wall
                 time would break replay determinism and the monotonicity
                 checks in tools/trace_report.py.

The token-aware rules that used to live here (naked-rand, raw-thread,
unordered-iter) moved to the native analyzer — see `rush_analyze` and
docs/static-analysis.md. This script keeps only the rules that need
cross-file semantic pairing (declaration ↔ definition bodies, call-site
argument inspection) that the analyzer's per-rule token passes do not do.

Suppression: append `// rush-lint: allow(<rule>) <reason>` to the
offending line, or place it on the line directly above. A reason is
encouraged; reviewers see it.

Usage:
  rush_lint.py <path>...     lint files / directory trees, exit 1 on findings
  rush_lint.py --self-test   prove every rule fires on a seeded violation
"""

from __future__ import annotations

import re
import sys
import tempfile
from pathlib import Path

CXX_SUFFIXES = {".hpp", ".h", ".cpp", ".cc", ".cxx"}
EXPECTS_SCOPE = {"sim", "sched"}
ALLOW_RE = re.compile(r"rush-lint:\s*allow\(([\w,\s-]+)\)")
CONST_CAST_RE = re.compile(r"\bconst_cast\b")
EMIT_CALL_RE = re.compile(r"(?:\.|->)\s*emit_\w+\s*\(")
SIM_TIME_ARG_RE = re.compile(r"now\s*\(\s*\)|\b[A-Za-z_]\w*_s_?\b|^\s*(?:t|when)\s*$")
ACCESS_RE = re.compile(r"^\s*(public|protected|private)\s*:")
CLASS_RE = re.compile(r"^\s*(?:template\s*<[^<>]*>\s*)?(class|struct)\s+(\w+)")
DECLARATOR_RE = re.compile(
    r"(\w+)\s*\(([^;{}]*)\)\s*(const)?[^;{}()]*([;{])")
NON_METHOD_NAMES = {
    "if", "for", "while", "switch", "return", "sizeof", "static_assert",
    "catch", "throw", "new", "delete", "assert", "decltype", "alignof",
    "RUSH_EXPECTS", "RUSH_ASSERT", "RUSH_AUDIT_CHECK", "RUSH_AUDIT_HOOK",
}


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string and char literals, preserving offsets and
    newlines so line numbers survive."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c in "\"'":
            quote, j = c, i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            for k in range(i + 1, min(j, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 1
        else:
            i += 1
    return "".join(out)


def allowed_rules_by_line(raw_lines: list[str]) -> dict[int, set[str]]:
    """Markers suppress their own line and the line below (1-based)."""
    allowed: dict[int, set[str]] = {}
    for ln, line in enumerate(raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if m:
            rules = {r.strip() for r in m.group(1).split(",")}
            allowed.setdefault(ln, set()).update(rules)
            allowed.setdefault(ln + 1, set()).update(rules)
    return allowed


def subsystem_of(path: Path) -> str | None:
    parts = path.parts
    return next((p for p in parts if p in {"sim", "sched", "core", "cluster",
                                           "telemetry", "apps", "ml", "common",
                                           "cli"}), None)


class FileUnit:
    def __init__(self, path: Path):
        self.path = path
        self.raw = path.read_text(encoding="utf-8", errors="replace")
        self.raw_lines = self.raw.splitlines()
        self.clean = strip_comments_and_strings(self.raw)
        self.clean_lines = self.clean.splitlines()
        self.allowed = allowed_rules_by_line(self.raw_lines)

    def is_allowed(self, line: int, rule: str) -> bool:
        return rule in self.allowed.get(line, set())


def check_pattern_rule(unit: FileUnit, regex: re.Pattern, rule: str,
                       message: str, findings: list[Finding]) -> None:
    for ln, line in enumerate(unit.clean_lines, start=1):
        if regex.search(line) and not unit.is_allowed(ln, rule):
            findings.append(Finding(unit.path, ln, rule, message))


def first_argument(text: str, open_paren: int) -> str:
    """Text of the first argument of the call whose '(' is at open_paren."""
    depth, i = 0, open_paren
    while i < len(text):
        c = text[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1:i]
        elif c == "," and depth == 1:
            return text[open_paren + 1:i]
        i += 1
    return text[open_paren + 1:]


def check_trace_sim_time(unit: FileUnit, findings: list[Finding]) -> None:
    """EventTrace emit_* call sites must stamp records with simulated time."""
    if "tests" in unit.path.parts:
        return  # tests legitimately emit with synthetic timestamps
    for m in EMIT_CALL_RE.finditer(unit.clean):
        arg = first_argument(unit.clean, m.end() - 1)
        ln = line_of_offset(unit.clean, m.start())
        if SIM_TIME_ARG_RE.search(arg):
            continue
        if unit.is_allowed(ln, "trace-sim-time"):
            continue
        findings.append(Finding(
            unit.path, ln, "trace-sim-time",
            "emit_* must receive the current simulated time as its first "
            "argument (an engine now() call or a *_s variable); "
            f"got '{arg.strip()[:60]}'"))


def line_of_offset(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def body_after(text: str, open_brace: int) -> str:
    """Text of the brace-balanced block starting at text[open_brace] == '{'."""
    depth, i = 0, open_brace
    while i < len(text):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return text[open_brace:i + 1]
        i += 1
    return text[open_brace:]


def public_regions(clean: str) -> list[tuple[str, int, int, int]]:
    """Yield (class_name, start_off, end_off, body_depth) for public member
    regions of every class/struct in comment-stripped text."""
    regions: list[tuple[str, int, int, int]] = []
    lines = clean.split("\n")
    offsets: list[int] = []
    off = 0
    for line in lines:
        offsets.append(off)
        off += len(line) + 1

    # Stack of open classes: (name, body_depth, access, region_start or None)
    stack: list[dict] = []
    depth = 0
    pending: str | None = None  # class name seen, waiting for its '{'
    pending_kind = "class"

    def close_region(entry: dict, end: int) -> None:
        if entry["region_start"] is not None:
            regions.append((entry["name"], entry["region_start"], end,
                            entry["body_depth"]))
            entry["region_start"] = None

    for ln, line in enumerate(lines):
        cm = CLASS_RE.match(line)
        if cm and ";" not in line.split("{")[0]:
            pending, pending_kind = cm.group(2), cm.group(1)
        am = ACCESS_RE.match(line)
        if am and stack and depth == stack[-1]["body_depth"]:
            entry = stack[-1]
            here = offsets[ln]
            if am.group(1) == "public":
                if entry["region_start"] is None:
                    entry["region_start"] = here
            else:
                close_region(entry, here)
        for ci, ch in enumerate(line):
            if ch == "{":
                depth += 1
                if pending is not None:
                    start = offsets[ln] + ci + 1
                    stack.append({
                        "name": pending,
                        "body_depth": depth,
                        "region_start": start if pending_kind == "struct" else None,
                    })
                    pending = None
            elif ch == "}":
                if stack and depth == stack[-1]["body_depth"]:
                    close_region(stack[-1], offsets[ln] + ci)
                    stack.pop()
                depth -= 1
            elif ch == ";" and pending is not None and "{" not in line:
                pending = None  # forward declaration
    return regions


def statement_start(text: str, pos: int) -> int:
    """Offset just after the previous statement/region boundary."""
    i = pos - 1
    while i >= 0 and text[i] not in ";{}:":
        i -= 1
    return i + 1


def find_definition_body(name: str, class_name: str,
                         units_in_dir: list[FileUnit]) -> str | None:
    pat = re.compile(re.escape(class_name) + r"\s*::\s*" + re.escape(name) + r"\s*\(")
    for unit in units_in_dir:
        if unit.path.suffix not in {".cpp", ".cc", ".cxx"}:
            continue
        for m in pat.finditer(unit.clean):
            brace = unit.clean.find("{", m.end())
            semi = unit.clean.find(";", m.end())
            if brace >= 0 and (semi < 0 or brace < semi):
                return body_after(unit.clean, brace)
    return None


def check_missing_expects(unit: FileUnit, units_in_dir: list[FileUnit],
                          findings: list[Finding]) -> None:
    if unit.path.suffix not in {".hpp", ".h"}:
        return
    clean = unit.clean
    for class_name, start, end, depth in public_regions(clean):
        region = clean[start:end]
        local_depth = 0
        for m in DECLARATOR_RE.finditer(region):
            # Only member declarators at class-body depth: anything nested in
            # an inline body is a call, not a declaration.
            local_depth = region.count("{", 0, m.start()) - region.count("}", 0, m.start())
            if local_depth != 0:
                continue
            name, params, constq, term = m.groups()
            if constq or name in NON_METHOD_NAMES or name == class_name:
                continue
            stmt_begin = statement_start(region, m.start())
            stmt = region[stmt_begin:m.end()]
            if re.search(r"\b(static|friend|using|typedef|operator|return|else|throw)\b", stmt):
                continue
            prefix = region[stmt_begin:m.start(1)]
            if not re.search(r"[\w>&*\]]\s+$", prefix):
                continue  # no return type before the name: a macro or a call
            params_norm = params.strip()
            if params_norm in ("", "void"):
                continue
            tail = region[m.end() - 1:]
            if term == ";" and re.search(r"=\s*(0|default|delete)\s*;", stmt + tail[:40]):
                continue
            line = line_of_offset(clean, start + m.start(4))
            decl_line = line_of_offset(clean, start + m.start(1))
            if any(unit.is_allowed(l, "missing-expects")
                   for l in range(decl_line, line + 1)):
                continue
            if term == "{":
                body = body_after(region, m.start(4))
            else:
                if re.search(r"=\s*(0|default|delete)", stmt):
                    continue
                body = find_definition_body(name, class_name, units_in_dir)
                if body is None:
                    continue  # defined elsewhere; out of this lint's sight
            if "RUSH_EXPECTS" not in body:
                findings.append(Finding(
                    unit.path, decl_line, "missing-expects",
                    f"public mutating API {class_name}::{name}() takes "
                    "arguments but its definition never validates them with "
                    "RUSH_EXPECTS"))


def lint_files(paths: list[Path]) -> list[Finding]:
    files: list[Path] = []
    for p in paths:
        if p.is_dir():
            files.extend(sorted(f for f in p.rglob("*") if f.suffix in CXX_SUFFIXES))
        elif p.suffix in CXX_SUFFIXES:
            files.append(p)

    units = {f: FileUnit(f) for f in files}
    by_dir: dict[Path, list[FileUnit]] = {}
    for f, u in units.items():
        by_dir.setdefault(f.parent, []).append(u)

    findings: list[Finding] = []
    for f, unit in units.items():
        sub = subsystem_of(f)
        check_pattern_rule(
            unit, CONST_CAST_RE, "const-cast",
            "const_cast is banned; restructure ownership instead", findings)
        check_trace_sim_time(unit, findings)
        if sub in EXPECTS_SCOPE:
            check_missing_expects(unit, by_dir[f.parent], findings)
    findings.sort(key=lambda x: (str(x.path), x.line))
    return findings


# --------------------------------------------------------------------------
# Self-test: each rule must fire on a seeded violation and stay silent on a
# clean file. Run as `rush_lint.py --self-test` (registered in ctest).

SELF_TEST_CASES = {
    "const-cast": ("src/telemetry/bad_cast.cpp", """
        void poke(const int* p) { *const_cast<int*>(p) = 1; }
        """),
    "missing-expects": ("src/sim/bad_api.hpp", """
        #pragma once
        class Throttle {
         public:
          void set_limit(double per_s) { limit_ = per_s; }
         private:
          double limit_ = 0.0;
        };
        """),
    "trace-sim-time": ("src/core/bad_trace.cpp", """
        #include <ctime>
        struct Trace { void emit_job_start(double t, int id); };
        void log_start(Trace& tr, int id) {
          tr.emit_job_start(wall_clock_seconds(), id);
        }
        """),
}

CLEAN_CASE = ("src/sched/clean.hpp", """
    #pragma once
    #include <unordered_set>
    #include <vector>
    #include "common/error.hpp"
    class Tracker {
     public:
      void add(int id) {
        RUSH_EXPECTS(id >= 0);
        live_.insert(id);
      }
      [[nodiscard]] int total() const {
        int sum = 0;
        for (int id : live_) sum += id;
        return sum;
      }
      [[nodiscard]] bool contains(int id) const { return live_.count(id) > 0; }
     private:
      std::unordered_set<int> live_;
    };
    struct Trace { void emit_added(double t_s, int id); };
    inline void note(Trace& tr, double now_s) { tr.emit_added(now_s, 3); }
    """)


def self_test() -> int:
    import textwrap
    failures = []
    with tempfile.TemporaryDirectory(prefix="rush_lint_selftest_") as tmp:
        root = Path(tmp)
        for rule, (rel, code) in SELF_TEST_CASES.items():
            f = root / rel
            f.parent.mkdir(parents=True, exist_ok=True)
            f.write_text(textwrap.dedent(code))
        clean_path = root / CLEAN_CASE[0]
        clean_path.parent.mkdir(parents=True, exist_ok=True)
        clean_path.write_text(textwrap.dedent(CLEAN_CASE[1]))

        findings = lint_files([root / "src"])
        fired = {f.rule for f in findings}
        for rule, (rel, _) in SELF_TEST_CASES.items():
            hits = [f for f in findings if f.rule == rule and rel.endswith(f.path.name)]
            if not hits:
                failures.append(f"rule '{rule}' did not fire on seeded violation {rel}")
        clean_hits = [f for f in findings if f.path == clean_path]
        if clean_hits:
            failures.append("clean file produced findings: " +
                            "; ".join(str(f) for f in clean_hits))
        unexpected = fired - set(SELF_TEST_CASES)
        if unexpected:
            failures.append(f"unexpected rules fired: {sorted(unexpected)}")

    if failures:
        print("rush_lint self-test FAILED:")
        for f in failures:
            print("  -", f)
        return 1
    print(f"rush_lint self-test passed: all {len(SELF_TEST_CASES)} rules fire "
          "on seeded violations and the clean file is quiet.")
    return 0


def main(argv: list[str]) -> int:
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__)
        return 0 if len(argv) >= 2 else 2
    if argv[1] == "--self-test":
        return self_test()
    findings = lint_files([Path(a) for a in argv[1:]])
    for f in findings:
        print(f)
    if findings:
        print(f"\nrush_lint: {len(findings)} finding(s).")
        return 1
    print("rush_lint: clean.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
