#!/usr/bin/env python3
"""Perf-baseline harness: run the micro-benchmarks, write BENCH_micro.json.

Runs the google-benchmark binaries (bench_micro_network,
bench_micro_telemetry, bench_micro_pool, bench_micro_ml, and
bench_micro_sched by default) from a release build tree and distills
their JSON output into one machine-readable file at the repo root:

    {
      "schema": 1,
      "quick": false,
      "benchmarks": {
        "bench_micro_network/BM_NetworkChurnIncremental": {
          "ns_per_op": 812.4, "items_per_second": 1231000.0
        },
        ...
      },
      "derived": { "network_churn_speedup": 123.4 }
    }

`ns_per_op` is google-benchmark cpu_time normalized to nanoseconds.
`network_churn_speedup` is BM_NetworkChurnFullRebuild /
BM_NetworkChurnIncremental — the incremental-engine headline number
(>= 5x is the PR 2 acceptance floor).

Usage:
    tools/bench_baseline.py [--quick] [--build-dir DIR] [--output FILE]
        [--fail-on-regress KEY:PCT ...]

--quick caps each benchmark's measuring time (CI smoke); full runs use
google-benchmark's default timing.

--fail-on-regress guards a benchmark against regression: before the
output file is overwritten, the freshly-measured ns_per_op of KEY (e.g.
"bench_micro_ml/BM_ForestPredict") is compared against the committed
value; the run fails if it regressed by more than PCT percent. Keys
absent from either side are skipped (first baseline runs stay green).
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_BENCHES = ["bench_micro_network", "bench_micro_telemetry", "bench_micro_pool",
                   "bench_micro_ml", "bench_micro_sched"]
TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

SPEEDUP_NUMERATOR = "bench_micro_network/BM_NetworkChurnFullRebuild"
SPEEDUP_DENOMINATOR = "bench_micro_network/BM_NetworkChurnIncremental"

# Fixed work over 10 trial-shaped tasks at pool widths 1 and 4; the ratio
# is the expected trial fan-out speedup on this host (~= min(4, cores)).
POOL_SCALING_SERIAL = "bench_micro_pool/BM_PoolScaling/1"
POOL_SCALING_WIDE = "bench_micro_pool/BM_PoolScaling/4"

# Per-node-sort reference trainer vs the presorted production trainer on
# the same 1000x282 fit (both produce bit-identical trees).
TREE_FIT_REFERENCE = "bench_micro_ml/BM_TreeFit/1000"
TREE_FIT_PRESORTED = "bench_micro_ml/BM_TreeFitPresorted/1000"

# Steady-state scheduling pass at queue depth 4096 on a 4096-node
# cluster: pinned ReferenceScheduler vs the incremental Scheduler (both
# make byte-identical decisions; >= 5x is the PR 9 acceptance floor).
SCHED_PASS_REFERENCE = "bench_micro_sched/BM_SchedPassSaturatedReference/4096/4096"
SCHED_PASS_INCREMENTAL = "bench_micro_sched/BM_SchedPassSaturated/4096/4096"


def find_build_dir(explicit: str | None) -> Path:
    if explicit:
        d = Path(explicit)
        if not d.is_absolute():
            d = REPO_ROOT / d
        if not d.is_dir():
            sys.exit(f"error: build dir {d} does not exist")
        return d
    for name in ("build-release", "build"):
        d = REPO_ROOT / name
        if d.is_dir():
            return d
    sys.exit("error: no build tree found (looked for build-release/, build/); "
             "pass --build-dir")


def find_binary(build_dir: Path, name: str) -> Path | None:
    for candidate in (build_dir / "bench" / name, build_dir / name):
        if candidate.is_file():
            return candidate
    hits = sorted(build_dir.rglob(name))
    return hits[0] if hits else None


def run_bench(binary: Path, quick: bool) -> dict:
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = Path(tmp.name)
    cmd = [str(binary), f"--benchmark_out={out_path}", "--benchmark_out_format=json"]
    if quick:
        # Newer google-benchmark requires the unit suffix; older builds
        # accept the bare float. Try the suffixed form first.
        for arg in ("--benchmark_min_time=0.05s", "--benchmark_min_time=0.05"):
            result = subprocess.run(cmd + [arg], cwd=REPO_ROOT,
                                    capture_output=True, text=True)
            if result.returncode == 0:
                break
    else:
        result = subprocess.run(cmd, cwd=REPO_ROOT, capture_output=True, text=True)
    if result.returncode != 0:
        sys.stderr.write(result.stdout + result.stderr)
        sys.exit(f"error: {binary.name} exited with {result.returncode}")
    sys.stdout.write(result.stdout)
    data = json.loads(out_path.read_text())
    out_path.unlink(missing_ok=True)
    return data


def distill(binary_name: str, raw: dict, out: dict[str, dict]) -> None:
    for bench in raw.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench["name"]
        scale = TIME_UNIT_NS.get(bench.get("time_unit", "ns"), 1.0)
        entry = {
            "ns_per_op": bench["cpu_time"] * scale,
            "real_ns_per_op": bench["real_time"] * scale,
        }
        if "items_per_second" in bench:
            entry["items_per_second"] = bench["items_per_second"]
        for key, value in bench.items():
            if key.startswith("allocs_per_op"):
                entry["allocs_per_op"] = value
        if bench.get("error_occurred"):
            entry["error"] = bench.get("error_message", "benchmark error")
        out[f"{binary_name}/{name}"] = entry


def parse_regress_guards(specs: list[str]) -> list[tuple[str, float]]:
    guards = []
    for spec in specs:
        key, sep, pct = spec.rpartition(":")
        if not sep or not key:
            sys.exit(f"error: --fail-on-regress expects KEY:PCT, got {spec!r}")
        try:
            guards.append((key, float(pct)))
        except ValueError:
            sys.exit(f"error: --fail-on-regress expects a numeric PCT, got {spec!r}")
    return guards


def check_regressions(guards: list[tuple[str, float]], baseline_path: Path,
                      benchmarks: dict[str, dict]) -> list[str]:
    """Regression messages for guarded keys that got slower than allowed."""
    if not guards or not baseline_path.is_file():
        return []
    baseline = json.loads(baseline_path.read_text()).get("benchmarks", {})
    problems = []
    for key, pct in guards:
        old = baseline.get(key, {}).get("ns_per_op")
        new = benchmarks.get(key, {}).get("ns_per_op")
        if old is None or new is None or old <= 0.0:
            continue
        limit = old * (1.0 + pct / 100.0)
        if new > limit:
            problems.append(f"{key}: {new:.1f} ns/op vs baseline {old:.1f} "
                            f"(+{(new / old - 1.0) * 100.0:.1f}%, limit +{pct:.0f}%)")
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="short measuring time per benchmark (CI smoke)")
    parser.add_argument("--build-dir", default=None,
                        help="build tree holding the bench binaries "
                             "(default: build-release/ then build/)")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_micro.json"),
                        help="output path (default: BENCH_micro.json at repo root)")
    parser.add_argument("--benches", nargs="*", default=DEFAULT_BENCHES,
                        help=f"benchmark binaries to run (default: {DEFAULT_BENCHES})")
    parser.add_argument("--fail-on-regress", action="append", default=[],
                        metavar="KEY:PCT",
                        help="fail if KEY's ns_per_op regressed more than PCT%% "
                             "against the committed output file (repeatable)")
    args = parser.parse_args()
    guards = parse_regress_guards(args.fail_on_regress)

    build_dir = find_build_dir(args.build_dir)
    benchmarks: dict[str, dict] = {}
    missing: list[str] = []
    for name in args.benches:
        binary = find_binary(build_dir, name)
        if binary is None:
            missing.append(name)
            continue
        print(f"== {name} ({binary}) ==", flush=True)
        distill(name, run_bench(binary, args.quick), benchmarks)
    if missing:
        sys.exit(f"error: benchmark binaries not found in {build_dir}: {missing} "
                 "(build them first: cmake --build <dir> --target " +
                 " ".join(missing) + ")")

    report = {
        "schema": 1,
        "generated_by": "tools/bench_baseline.py",
        "quick": args.quick,
        "build_dir": str(build_dir),
        # Host parallelism the pool benchmarks ran under; scaling numbers
        # from a 1-core runner are dispatch-overhead-only, not speedup.
        "jobs": os.cpu_count() or 1,
        "benchmarks": benchmarks,
        "derived": {},
    }
    num = benchmarks.get(SPEEDUP_NUMERATOR)
    den = benchmarks.get(SPEEDUP_DENOMINATOR)
    if num and den and den["ns_per_op"] > 0.0:
        report["derived"]["network_churn_speedup"] = num["ns_per_op"] / den["ns_per_op"]
    serial = benchmarks.get(POOL_SCALING_SERIAL)
    wide = benchmarks.get(POOL_SCALING_WIDE)
    if serial and wide and wide["real_ns_per_op"] > 0.0:
        # Wall-clock ratio (cpu_time only meters the dispatching thread).
        report["derived"]["trial_parallel_speedup"] = (
            serial["real_ns_per_op"] / wide["real_ns_per_op"])
    ref = benchmarks.get(TREE_FIT_REFERENCE)
    pre = benchmarks.get(TREE_FIT_PRESORTED)
    if ref and pre and pre["ns_per_op"] > 0.0:
        report["derived"]["tree_fit_presort_speedup"] = (
            ref["ns_per_op"] / pre["ns_per_op"])
    sref = benchmarks.get(SCHED_PASS_REFERENCE)
    sinc = benchmarks.get(SCHED_PASS_INCREMENTAL)
    if sref and sinc and sinc["ns_per_op"] > 0.0:
        report["derived"]["sched_pass_speedup"] = (
            sref["ns_per_op"] / sinc["ns_per_op"])

    failures = [k for k, v in benchmarks.items() if "error" in v]
    out_path = Path(args.output)
    regressions = check_regressions(guards, out_path, benchmarks)
    out_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out_path}")
    if "network_churn_speedup" in report["derived"]:
        print(f"network churn speedup (full rebuild / incremental): "
              f"{report['derived']['network_churn_speedup']:.1f}x")
    if "trial_parallel_speedup" in report["derived"]:
        print(f"trial fan-out speedup (pool width 1 / width 4, "
              f"{report['jobs']} cores): "
              f"{report['derived']['trial_parallel_speedup']:.2f}x")
    if "tree_fit_presort_speedup" in report["derived"]:
        print(f"tree fit speedup (per-node-sort reference / presorted): "
              f"{report['derived']['tree_fit_presort_speedup']:.2f}x")
    if "sched_pass_speedup" in report["derived"]:
        print(f"scheduling pass speedup (reference / incremental, "
              f"depth 4096 on 4096 nodes): "
              f"{report['derived']['sched_pass_speedup']:.1f}x")
    if failures:
        sys.exit(f"error: benchmarks reported failures: {failures}")
    if regressions:
        sys.exit("error: perf regressions beyond the allowed threshold:\n  " +
                 "\n  ".join(regressions))
    return 0


if __name__ == "__main__":
    sys.exit(main())
