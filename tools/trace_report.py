#!/usr/bin/env python3
"""Summarize a RUSH JSONL event trace (see docs/trace-format.md).

Reads a trace produced with a bench's `--trace PATH` flag (or any
obs::EventTrace sink), validates every record against the v1 schema
envelope — required keys, known event names, per-trial monotone sim
time, gap-free sequence numbers — and prints one summary block per
trial:

  * policy, seed, job count, makespan, total Algorithm-2 skips
  * variation runs (jobs whose measured slowdown exceeded a threshold)
  * top congested links by max-congestion episodes and peak utilization
  * prediction outcome counts: each oracle label (no-variation /
    little-variation / variation) crossed with whether the job's run
    actually varied — the deployment-side confusion table

Any parse or schema error makes the exit status non-zero, so CI can run
this as a trace smoke check. A sibling PATH.manifest.json (written by
the bench harness) is echoed when present so a report is traceable to
the binary and seed that produced it.

Usage:
  trace_report.py TRACE.jsonl [--slowdown-threshold X] [--top-links N]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REQUIRED_KEYS = ("v", "seq", "t", "ev")
SCHEMA_VERSION = 1
KNOWN_EVENTS = {
    "trial_start", "trial_end", "job_submit", "job_start", "job_end",
    "alloc_decision", "alg2_skip", "predict", "congestion",
    "fault_node_down", "fault_node_restore", "fault_link_degrade",
    "fault_link_restore", "fault_sampler_dropout", "fault_counter_corrupt",
    "fault_canary_timeout", "fault_job_requeue", "fault_oracle_fallback",
}
EVENT_FIELDS = {
    "trial_start": {"policy", "seed"},
    "trial_end": {"policy", "seed", "makespan_s", "total_skips"},
    "job_submit": {"job", "app", "nodes", "walltime_est_s"},
    "job_start": {"job", "wait_s", "backfilled", "node_ids"},
    "job_end": {"job", "runtime_s", "slowdown", "skips"},
    "alloc_decision": {"head_job", "reservation_s", "candidates"},
    "alg2_skip": {"job", "prediction", "skip_count", "skip_threshold"},
    "predict": {"job", "label", "feature_hash"},
    "congestion": {"start_s", "link", "peak_util"},
    # Fault-injection records (docs/fault-injection.md); only present in
    # runs given a --faults plan.
    "fault_node_down": {"node", "drain", "duration_s"},
    "fault_node_restore": {"node"},
    "fault_link_degrade": {"link", "factor", "duration_s"},
    "fault_link_restore": {"link"},
    "fault_sampler_dropout": {"node", "until_s"},
    "fault_counter_corrupt": {"node", "until_s"},
    "fault_canary_timeout": {"node", "until_s"},
    "fault_job_requeue": {"job", "node", "requeues"},
    "fault_oracle_fallback": {"job", "reason", "label"},
}


class TraceError(Exception):
    """A record that violates the trace schema."""


class Trial:
    def __init__(self, policy: str, seed: int):
        self.policy = policy
        self.seed = seed
        self.makespan_s = 0.0
        self.total_skips = 0
        self.jobs_submitted = 0
        self.jobs_completed = 0
        self.backfilled = 0
        self.slowdowns: list[float] = []
        self.skip_events = 0
        # link id -> (episode count, worst peak utilization)
        self.links: dict[int, list[float]] = {}
        # job id -> last predicted label before it ran
        self.predictions: dict[int, str] = {}
        # (label, varied?) -> count
        self.confusion: dict[tuple[str, bool], int] = {}
        self.job_slowdown: dict[int, float] = {}
        # fault record kind -> count (empty for zero-fault runs)
        self.faults: dict[str, int] = {}
        # fallback reason -> count
        self.fallback_reasons: dict[str, int] = {}


def parse_records(path: Path):
    """Yield (line_number, record) for every line; raise TraceError on any
    malformed record."""
    with path.open(encoding="utf-8") as fh:
        for ln, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceError(f"line {ln}: invalid JSON: {exc}") from exc
            if not isinstance(rec, dict):
                raise TraceError(f"line {ln}: record is not a JSON object")
            for key in REQUIRED_KEYS:
                if key not in rec:
                    raise TraceError(f"line {ln}: missing required key '{key}'")
            if rec["v"] != SCHEMA_VERSION:
                raise TraceError(
                    f"line {ln}: schema version {rec['v']} (reader supports "
                    f"{SCHEMA_VERSION}); see docs/trace-format.md")
            ev = rec["ev"]
            if ev not in KNOWN_EVENTS:
                raise TraceError(f"line {ln}: unknown event '{ev}'")
            missing = EVENT_FIELDS[ev] - rec.keys()
            if missing:
                raise TraceError(
                    f"line {ln}: event '{ev}' missing fields {sorted(missing)}")
            yield ln, rec


def analyze(path: Path, slowdown_threshold: float) -> list[Trial]:
    trials: list[Trial] = []
    current: Trial | None = None
    prev_seq = None
    prev_t = None

    for ln, rec in parse_records(path):
        seq, t, ev = rec["seq"], rec["t"], rec["ev"]
        if prev_seq is not None and seq != prev_seq + 1:
            raise TraceError(f"line {ln}: sequence gap ({prev_seq} -> {seq})")
        prev_seq = seq
        # Sim time restarts at each trial boundary but must never move
        # backwards within one trial.
        if ev == "trial_start":
            prev_t = None
        if prev_t is not None and t < prev_t:
            raise TraceError(
                f"line {ln}: sim time went backwards ({prev_t} -> {t})")
        prev_t = t

        if ev == "trial_start":
            current = Trial(rec["policy"], rec["seed"])
            trials.append(current)
            continue
        if current is None:
            # Tolerate traces that begin mid-trial (e.g. manual emits).
            current = Trial("(unknown)", 0)
            trials.append(current)

        if ev == "trial_end":
            current.makespan_s = rec["makespan_s"]
            current.total_skips = rec["total_skips"]
        elif ev == "job_submit":
            current.jobs_submitted += 1
        elif ev == "job_start":
            if rec["backfilled"]:
                current.backfilled += 1
        elif ev == "job_end":
            current.jobs_completed += 1
            slowdown = rec["slowdown"]
            current.slowdowns.append(slowdown)
            current.job_slowdown[rec["job"]] = slowdown
            label = current.predictions.get(rec["job"])
            if label is not None:
                varied = slowdown >= slowdown_threshold
                key = (label, varied)
                current.confusion[key] = current.confusion.get(key, 0) + 1
        elif ev == "alg2_skip":
            current.skip_events += 1
        elif ev == "predict":
            current.predictions[rec["job"]] = rec["label"]
        elif ev == "congestion":
            entry = current.links.setdefault(rec["link"], [0, 0.0])
            entry[0] += 1
            entry[1] = max(entry[1], rec["peak_util"])
        elif ev.startswith("fault_"):
            current.faults[ev] = current.faults.get(ev, 0) + 1
            if ev == "fault_oracle_fallback":
                reason = rec["reason"]
                current.fallback_reasons[reason] = (
                    current.fallback_reasons.get(reason, 0) + 1)
    return trials


def print_report(trials: list[Trial], slowdown_threshold: float,
                 top_links: int) -> None:
    for i, trial in enumerate(trials):
        variation_runs = sum(1 for s in trial.slowdowns if s >= slowdown_threshold)
        print(f"trial {i}: policy={trial.policy} seed={trial.seed}")
        print(f"  jobs: {trial.jobs_submitted} submitted, "
              f"{trial.jobs_completed} completed, {trial.backfilled} backfilled")
        print(f"  makespan: {trial.makespan_s:.1f} s   "
              f"alg2 skips: {trial.total_skips} "
              f"({trial.skip_events} skip events)")
        print(f"  variation runs (slowdown >= {slowdown_threshold}): "
              f"{variation_runs} / {len(trial.slowdowns)}")
        if trial.links:
            ranked = sorted(trial.links.items(),
                            key=lambda kv: (-kv[1][0], -kv[1][1]))[:top_links]
            parts = [f"link {lid}: {int(n)} episodes peak {peak:.2f}"
                     for lid, (n, peak) in ranked]
            print(f"  top congested links: {'; '.join(parts)}")
        if trial.confusion:
            print("  prediction outcomes (label / actually varied: count):")
            for (label, varied), n in sorted(trial.confusion.items()):
                print(f"    {label:>16} / {'varied' if varied else 'steady':>6}: {n}")
        if trial.faults:
            parts = [f"{kind.removeprefix('fault_')}: {n}"
                     for kind, n in sorted(trial.faults.items())]
            print(f"  faults: {'; '.join(parts)}")
            if trial.fallback_reasons:
                reasons = [f"{r}: {n}"
                           for r, n in sorted(trial.fallback_reasons.items())]
                print(f"  oracle fallback reasons: {'; '.join(reasons)}")
        print()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("trace", type=Path, help="JSONL trace file to summarize")
    parser.add_argument("--slowdown-threshold", type=float, default=1.2,
                        help="slowdown above which a run counts as a "
                             "variation run (default: %(default)s)")
    parser.add_argument("--top-links", type=int, default=3,
                        help="congested links to list per trial "
                             "(default: %(default)s)")
    args = parser.parse_args(argv)

    manifest = args.trace.with_name(args.trace.name + ".manifest.json")
    if manifest.exists():
        try:
            info = json.loads(manifest.read_text(encoding="utf-8"))
            print(f"manifest: tool={info.get('tool', '?')} "
                  f"seed={info.get('seed', '?')} trials={info.get('trials', '?')} "
                  f"days={info.get('days', '?')} git={info.get('git_sha', '?')}")
        except (json.JSONDecodeError, OSError) as exc:
            print(f"error: unreadable manifest {manifest}: {exc}", file=sys.stderr)
            return 1

    try:
        trials = analyze(args.trace, args.slowdown_threshold)
    except TraceError as exc:
        print(f"error: {args.trace}: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 1

    if not trials:
        print(f"error: {args.trace}: no records", file=sys.stderr)
        return 1

    records = sum(t.jobs_submitted + t.jobs_completed for t in trials)
    print(f"{args.trace}: {len(trials)} trial(s), "
          f"{records} job lifecycle records validated\n")
    print_report(trials, args.slowdown_threshold, args.top_links)
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # e.g. piped into `head`
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
