#!/usr/bin/env python3
"""Markdown link checker for the docs tree (no network access).

Scans the given markdown files / directories for inline links and
images (`[text](target)`), and verifies every *local* target:

  * relative file links must resolve to an existing file or directory,
    relative to the markdown file containing them;
  * `#anchor` fragments (own-file or `file.md#anchor`) must match a
    heading in the target file, using GitHub's slug rules (lowercase,
    spaces to dashes, punctuation dropped);
  * `http(s)://` and `mailto:` targets are skipped — CI must not depend
    on external availability.

Exit status is the number of broken links (0 = all good), so the CI
docs job can run it directly.

Usage:
  check_md_links.py README.md docs/ DESIGN.md ...
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# Inline links/images; skips reference-style definitions, which this
# repo does not use.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: strip markdown emphasis/code, lowercase,
    drop punctuation, spaces to dashes."""
    text = re.sub(r"[`*_]|\[([^\]]*)\]\([^)]*\)", r"\1", heading).strip()
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def headings_of(path: Path) -> set[str]:
    slugs: set[str] = set()
    seen: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8", errors="replace").splitlines():
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = github_slug(m.group(1))
        n = seen.get(slug, 0)
        seen[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def links_of(path: Path):
    in_fence = False
    for ln, line in enumerate(
            path.read_text(encoding="utf-8", errors="replace").splitlines(),
            start=1):
        if CODE_FENCE_RE.match(line):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for m in LINK_RE.finditer(line):
            yield ln, m.group(1)


def check_file(md: Path, errors: list[str]) -> None:
    for ln, target in links_of(md):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = (md.parent / file_part).resolve()
            if not resolved.exists():
                errors.append(f"{md}:{ln}: broken link '{target}' "
                              f"({resolved} does not exist)")
                continue
            anchor_file = resolved
        else:
            anchor_file = md
        if anchor:
            if anchor_file.is_dir() or anchor_file.suffix.lower() != ".md":
                continue  # anchors into non-markdown are out of scope
            if anchor.lower() not in headings_of(anchor_file):
                errors.append(f"{md}:{ln}: anchor '#{anchor}' not found "
                              f"in {anchor_file.name}")


def main(argv: list[str]) -> int:
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__)
        return 0 if len(argv) >= 2 else 2
    files: list[Path] = []
    for arg in argv[1:]:
        p = Path(arg)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.md")))
        elif p.suffix.lower() == ".md" and p.exists():
            files.append(p)
        else:
            print(f"error: {p} is not a markdown file or directory",
                  file=sys.stderr)
            return 2
    errors: list[str] = []
    for md in files:
        check_file(md, errors)
    for e in errors:
        print(e)
    print(f"check_md_links: {len(files)} file(s), {len(errors)} broken link(s)")
    return min(len(errors), 125)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
